//! Length-prefixed, checksummed line frames for the coordinator ↔ worker
//! pipes.
//!
//! A frame is one ASCII line:
//!
//! ```text
//! <len:08x> <crc:08x> <body>\n
//! ```
//!
//! where `len` is the byte length of `body` and `crc` is the same CRC-32
//! (ISO-HDLC) the journal uses. The body is a space-separated message whose
//! first token names the kind:
//!
//! | direction             | body                                                  |
//! |-----------------------|-------------------------------------------------------|
//! | worker → coordinator  | `hello <worker> <epoch> <pid>`                        |
//! | worker → coordinator  | `hello2 <worker> <epoch> <pid> <token>`               |
//! | coordinator → worker  | `welcome <worker> <epoch> <token>`                    |
//! | worker → coordinator  | `hb <worker> <epoch> <seq>`                           |
//! | worker → coordinator  | `result <worker> <lease_id> <epoch> <flat> <outcome>` |
//! | coordinator → worker  | `lease <lease_id> <epoch> <flat> <attempt>`           |
//! | coordinator → worker  | `shutdown`                                            |
//!
//! `hello2`/`welcome` are the socket handshake: a first connection carries
//! token 0 and is answered with a freshly minted session token; a
//! reconnecting worker echoes the token it was welcomed with, which lets the
//! coordinator re-attach the connection to the worker's existing lease view
//! instead of forking a new session (DESIGN.md §15).
//!
//! `<outcome>` is the journal's single-token [`RawOutcome`] codec
//! ([`RawOutcome::encode_wire`]), so a reply the coordinator accepts is
//! journaled byte-identically to a local evaluation. Every frame carries the
//! sender's worker epoch; the coordinator fences replies from a previous
//! incarnation by comparing it against the current epoch.
//!
//! Decoding is strict: a bad length, a bad checksum, or an unparseable body
//! all come back as a [`FrameError`], which the coordinator treats as a
//! garbled frame (revoke the sender's lease and re-grant elsewhere). There is
//! no resynchronisation protocol — frames are newline-delimited, so the
//! reader is already aligned on the next line.

// lint: zone(wire-frame): lengths and offsets here arrive off the wire
// before any checksum passes, so arithmetic on them must be checked.

use hypermapper::journal::crc32;
use hypermapper::RawOutcome;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};

/// Upper bound on one frame line, newline included. Every legitimate message
/// is far below this; anything longer is a corrupt or hostile stream, and the
/// reader discards to the next newline rather than buffering without bound.
pub const MAX_FRAME_LEN: usize = 64 * 1024;

/// A protocol message, either direction.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Worker announces itself after spawn.
    Hello {
        /// Worker index assigned by the coordinator at spawn.
        worker: u32,
        /// Worker epoch the worker was spawned under.
        epoch: u64,
        /// OS process id, for diagnostics.
        pid: u32,
    },
    /// Periodic liveness signal from a worker's heartbeat thread.
    Heartbeat {
        /// Worker index.
        worker: u32,
        /// Worker epoch.
        epoch: u64,
        /// Monotonic heartbeat counter within this worker process.
        seq: u64,
    },
    /// Completed lease: the worker evaluated `flat` and reports the outcome.
    Result {
        /// Worker index.
        worker: u32,
        /// The lease this reply answers. Stale ids are dropped.
        lease_id: u64,
        /// Worker epoch; replies from older incarnations are fenced off.
        epoch: u64,
        /// Flat configuration index that was evaluated.
        flat: u64,
        /// The evaluation outcome in journal wire form.
        outcome: RawOutcome,
    },
    /// Coordinator grants a configuration lease to a worker.
    Lease {
        /// Unique (per coordinator) lease id; echoed back in the reply.
        lease_id: u64,
        /// Current worker epoch; the worker echoes it back.
        epoch: u64,
        /// Flat configuration index to evaluate.
        flat: u64,
        /// 1-based attempt counter for this configuration.
        attempt: u32,
    },
    /// Coordinator asks the worker to exit cleanly.
    Shutdown,
    /// Socket handshake, worker → coordinator: like [`Msg::Hello`] plus the
    /// session token. Token 0 means "no prior session" (first connect); a
    /// nonzero token is the one a previous [`Msg::Welcome`] granted, asking
    /// to resume that session.
    HelloSocket {
        /// Worker index assigned at spawn (or via `--worker-id`).
        worker: u32,
        /// Worker epoch the worker runs under.
        epoch: u64,
        /// OS process id, for diagnostics.
        pid: u32,
        /// Session token from a prior welcome, or 0 on first connect.
        token: u64,
    },
    /// Socket handshake, coordinator → worker: accepts the connection and
    /// binds it to a session. The worker must adopt `epoch` and echo `token`
    /// on every future reconnect.
    Welcome {
        /// Worker index the coordinator bound this connection to.
        worker: u32,
        /// The authoritative worker epoch for this session.
        epoch: u64,
        /// Session token; nonzero, unique per (worker, incarnation).
        token: u64,
    },
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The line did not have the `<len> <crc> <body>` shape.
    Malformed,
    /// The declared body length did not match the actual body.
    Length,
    /// The CRC-32 over the body did not match.
    Checksum,
    /// Framing was intact but the body was not a known message.
    Body,
    /// The line exceeded [`MAX_FRAME_LEN`] before a newline arrived; the
    /// reader discarded bytes up to the next newline to resynchronise.
    Oversize,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self {
            FrameError::Malformed => "malformed frame",
            FrameError::Length => "length mismatch",
            FrameError::Checksum => "checksum mismatch",
            FrameError::Body => "unparseable body",
            FrameError::Oversize => "oversize frame",
        };
        f.write_str(what)
    }
}

fn encode_body(msg: &Msg) -> String {
    match msg {
        Msg::Hello { worker, epoch, pid } => format!("hello {worker} {epoch} {pid}"),
        Msg::Heartbeat { worker, epoch, seq } => format!("hb {worker} {epoch} {seq}"),
        Msg::Result { worker, lease_id, epoch, flat, outcome } => {
            format!("result {worker} {lease_id} {epoch} {flat} {}", outcome.encode_wire())
        }
        Msg::Lease { lease_id, epoch, flat, attempt } => {
            format!("lease {lease_id} {epoch} {flat} {attempt}")
        }
        Msg::Shutdown => "shutdown".to_string(),
        Msg::HelloSocket { worker, epoch, pid, token } => {
            format!("hello2 {worker} {epoch} {pid} {token}")
        }
        Msg::Welcome { worker, epoch, token } => format!("welcome {worker} {epoch} {token}"),
    }
}

/// Encode a message as a full frame line, trailing `\n` included.
pub fn encode_frame(msg: &Msg) -> String {
    let body = encode_body(msg);
    format!("{:08x} {:08x} {body}\n", body.len(), crc32(body.as_bytes()))
}

fn decode_body(body: &str) -> Option<Msg> {
    let mut it = body.split(' ');
    let kind = it.next()?;
    let msg = match kind {
        "hello" => Msg::Hello {
            worker: it.next()?.parse().ok()?,
            epoch: it.next()?.parse().ok()?,
            pid: it.next()?.parse().ok()?,
        },
        "hb" => Msg::Heartbeat {
            worker: it.next()?.parse().ok()?,
            epoch: it.next()?.parse().ok()?,
            seq: it.next()?.parse().ok()?,
        },
        "result" => Msg::Result {
            worker: it.next()?.parse().ok()?,
            lease_id: it.next()?.parse().ok()?,
            epoch: it.next()?.parse().ok()?,
            flat: it.next()?.parse().ok()?,
            outcome: RawOutcome::decode_wire(it.next()?)?,
        },
        "lease" => Msg::Lease {
            lease_id: it.next()?.parse().ok()?,
            epoch: it.next()?.parse().ok()?,
            flat: it.next()?.parse().ok()?,
            attempt: it.next()?.parse().ok()?,
        },
        "shutdown" => Msg::Shutdown,
        "hello2" => Msg::HelloSocket {
            worker: it.next()?.parse().ok()?,
            epoch: it.next()?.parse().ok()?,
            pid: it.next()?.parse().ok()?,
            token: it.next()?.parse().ok()?,
        },
        "welcome" => Msg::Welcome {
            worker: it.next()?.parse().ok()?,
            epoch: it.next()?.parse().ok()?,
            token: it.next()?.parse().ok()?,
        },
        _ => return None,
    };
    if it.next().is_some() {
        return None; // trailing tokens: treat as garbled, not best-effort
    }
    Some(msg)
}

/// Decode one frame line (with or without the trailing newline).
pub fn decode_frame(line: &str) -> Result<Msg, FrameError> {
    let line = line.strip_suffix('\n').unwrap_or(line);
    let (len_hex, rest) = line.split_once(' ').ok_or(FrameError::Malformed)?;
    let (crc_hex, body) = rest.split_once(' ').ok_or(FrameError::Malformed)?;
    let len = usize::from_str_radix(len_hex, 16).map_err(|_| FrameError::Malformed)?;
    let crc = u32::from_str_radix(crc_hex, 16).map_err(|_| FrameError::Malformed)?;
    if body.len() != len {
        return Err(FrameError::Length);
    }
    if crc32(body.as_bytes()) != crc {
        return Err(FrameError::Checksum);
    }
    decode_body(body).ok_or(FrameError::Body)
}

/// Corrupt a frame in a deterministic, detectable way: flip one byte of the
/// body without touching the checksum. Used by the chaos harness; the
/// receiver must report [`FrameError::Checksum`].
pub fn garble_frame(frame: &str) -> String {
    let mut bytes = frame.as_bytes().to_vec();
    // Flip a bit in the last body byte before the newline; every frame body
    // is at least one byte, and flipping 0x01 keeps it printable ASCII.
    if bytes.len() >= 2 {
        let i = bytes.len() - 2;
        bytes[i] ^= 0x01;
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Incremental, bounded frame reader over any byte stream.
///
/// Unlike `BufRead::read_line`, this reader:
///
/// - survives read timeouts: a `WouldBlock`/`TimedOut` error is returned to
///   the caller but the partial line stays buffered, so the next call resumes
///   mid-frame instead of losing bytes (essential under `set_read_timeout`);
/// - bounds memory: a line longer than [`MAX_FRAME_LEN`] yields
///   [`FrameError::Oversize`] once and the reader discards to the next
///   newline to resynchronise;
/// - treats mid-frame EOF as data, not silence: a non-empty tail without a
///   newline is decoded (and, being truncated, fails the length or checksum
///   test as a *checked* error — never a silent short read).
pub struct FrameReader<R> {
    inner: R,
    buf: Vec<u8>,
    /// Bytes of `buf` already scanned for a newline; avoids re-scanning the
    /// prefix after every short read.
    scanned: usize,
    /// True while discarding an oversize line's tail.
    skipping: bool,
    /// EOF has been observed on `inner`.
    eof: bool,
}

/// One step of [`FrameReader::next_frame`].
#[derive(Debug, PartialEq)]
pub enum Framed {
    /// A complete line arrived and decoded as a message.
    Msg(Msg),
    /// A complete line arrived but failed to decode; the reader is already
    /// aligned on the next line.
    Bad(FrameError),
    /// Clean end of stream: no buffered bytes remain.
    Eof,
}

impl<R: Read> FrameReader<R> {
    /// Wrap a byte stream.
    pub fn new(inner: R) -> Self {
        FrameReader { inner, buf: Vec::new(), scanned: 0, skipping: false, eof: false }
    }

    /// Read until one frame line (or EOF) is available. Timeout-style errors
    /// (`WouldBlock`, `TimedOut`) are surfaced as `Err` with all partial
    /// input retained; call again to resume. `Interrupted` is retried
    /// internally.
    pub fn next_frame(&mut self) -> io::Result<Framed> {
        loop {
            // Scan unscanned bytes for a line terminator.
            if let Some(pos) = self.buf[self.scanned..].iter().position(|&b| b == b'\n') {
                // `pos` indexes into `buf[scanned..]`, so the sum is bounded
                // by `buf.len()`; saturating keeps the zone's no-wrap
                // guarantee without an unreachable error path.
                let end = self.scanned.saturating_add(pos);
                let line: Vec<u8> = self.buf.drain(..=end).collect();
                self.scanned = 0;
                if self.skipping {
                    // Tail of an oversize line: already reported, just drop.
                    self.skipping = false;
                    continue;
                }
                return Ok(framed_from_line(&line[..line.len() - 1]));
            }
            self.scanned = self.buf.len();
            if self.skipping {
                // Discard the oversize body as it streams in.
                self.buf.clear();
                self.scanned = 0;
            } else if self.buf.len() > MAX_FRAME_LEN {
                self.buf.clear();
                self.scanned = 0;
                self.skipping = true;
                return Ok(Framed::Bad(FrameError::Oversize));
            }
            if self.eof {
                if self.buf.is_empty() || self.skipping {
                    return Ok(Framed::Eof);
                }
                // Mid-frame EOF: decode the unterminated tail as-is. A
                // truncated frame fails Length/Checksum; a complete frame
                // that merely lost its newline still decodes.
                let tail: Vec<u8> = self.buf.drain(..).collect();
                self.scanned = 0;
                return Ok(framed_from_line(&tail));
            }
            let mut chunk = [0u8; 4096];
            match self.inner.read(&mut chunk) {
                Ok(0) => self.eof = true,
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
    }
}

fn framed_from_line(line: &[u8]) -> Framed {
    match std::str::from_utf8(line) {
        Ok(s) => match decode_frame(s) {
            Ok(msg) => Framed::Msg(msg),
            Err(e) => Framed::Bad(e),
        },
        Err(_) => Framed::Bad(FrameError::Malformed),
    }
}

/// A detachable, thread-shared frame writer.
///
/// The worker's heartbeat thread and serve loop both write frames; wrapping
/// the sink in one mutex keeps each `write_all + flush` atomic so frames
/// never interleave. The sink is an `Option` so a socket worker can detach it
/// during a reconnect window — sends then fail fast (reported as `false`)
/// instead of racing the handshake.
#[derive(Clone)]
pub struct SharedWriter {
    sink: Arc<Mutex<Option<Box<dyn Write + Send>>>>,
}

impl Default for SharedWriter {
    fn default() -> Self {
        Self::detached()
    }
}

impl SharedWriter {
    /// A writer with no sink attached; sends fail until [`Self::attach`].
    pub fn detached() -> Self {
        SharedWriter { sink: Arc::new(Mutex::new(None)) }
    }

    /// A writer over the given sink.
    pub fn new(sink: Box<dyn Write + Send>) -> Self {
        SharedWriter { sink: Arc::new(Mutex::new(Some(sink))) }
    }

    /// Replace the sink (e.g. after a socket reconnect).
    pub fn attach(&self, sink: Box<dyn Write + Send>) {
        *self.lock() = Some(sink);
    }

    /// Drop the sink; subsequent sends fail fast.
    pub fn detach(&self) {
        *self.lock() = None;
    }

    /// True when a sink is attached.
    pub fn is_attached(&self) -> bool {
        self.lock().is_some()
    }

    /// Write one message atomically. Returns `false` when detached or on any
    /// I/O error (the caller decides whether that is fatal).
    pub fn send(&self, msg: &Msg) -> bool {
        self.send_raw(&encode_frame(msg))
    }

    /// Write a pre-encoded frame (or deliberately corrupted bytes, for the
    /// chaos harness) atomically.
    pub fn send_raw(&self, frame: &str) -> bool {
        let mut guard = self.lock();
        match guard.as_mut() {
            Some(sink) => {
                let ok = sink.write_all(frame.as_bytes()).and_then(|_| sink.flush()).is_ok();
                if !ok {
                    *guard = None; // a broken sink stays broken; fail fast from now on
                }
                ok
            }
            None => false,
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Option<Box<dyn Write + Send>>> {
        // A poisoned lock only means another thread panicked mid-send; the
        // Option state is still coherent.
        self.sink.lock().unwrap_or_else(|e| e.into_inner())
    }
}

/// How a worker reaches its coordinator: the byte-stream pair the wire
/// protocol runs over. Both directions speak identical frames, so the lease
/// machinery above this layer cannot tell transports apart — which is the
/// whole point: fingerprints must not change when the pipe becomes a socket.
pub trait Transport {
    /// The read side, to feed a [`FrameReader`].
    fn reader(&mut self) -> io::Result<Box<dyn Read + Send>>;
    /// The write side, to attach to a [`SharedWriter`].
    fn writer(&mut self) -> io::Result<Box<dyn Write + Send>>;
    /// Bound how long a single read may block, where the stream supports it
    /// (no-op for stdio: pipe reads are unbounded, as before PR 9).
    fn set_read_timeout_ms(&mut self, _ms: u64) -> io::Result<()> {
        Ok(())
    }
    /// Tear the connection down (both directions where applicable).
    fn shutdown(&mut self);
}

/// The PR-7 transport: the process's own stdin/stdout. Spawned stdio workers
/// keep byte-identical behavior — this is a rename, not a rewrite.
pub struct StdioTransport;

impl Transport for StdioTransport {
    fn reader(&mut self) -> io::Result<Box<dyn Read + Send>> {
        Ok(Box::new(io::stdin()))
    }
    fn writer(&mut self) -> io::Result<Box<dyn Write + Send>> {
        Ok(Box::new(io::stdout()))
    }
    fn shutdown(&mut self) {}
}

/// A TCP connection to the coordinator, std-only. `TcpStream::try_clone`
/// gives independently owned read/write halves over one socket.
pub struct SocketTransport {
    stream: TcpStream,
}

impl SocketTransport {
    /// Connect to `addr` (e.g. `127.0.0.1:7071`), with Nagle disabled — the
    /// protocol is small request/response frames, exactly the case delayed
    /// ACK + Nagle interact badly with.
    pub fn connect(addr: &str, io_timeout_ms: u64) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        if io_timeout_ms > 0 {
            let t = std::time::Duration::from_millis(io_timeout_ms);
            stream.set_read_timeout(Some(t))?;
            stream.set_write_timeout(Some(t))?;
        }
        Ok(SocketTransport { stream })
    }

    /// Wrap an accepted stream (coordinator side).
    pub fn from_stream(stream: TcpStream) -> Self {
        SocketTransport { stream }
    }

    /// The underlying stream, for peer-address diagnostics.
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }
}

impl Transport for SocketTransport {
    fn reader(&mut self) -> io::Result<Box<dyn Read + Send>> {
        Ok(Box::new(self.stream.try_clone()?))
    }
    fn writer(&mut self) -> io::Result<Box<dyn Write + Send>> {
        Ok(Box::new(self.stream.try_clone()?))
    }
    fn set_read_timeout_ms(&mut self, ms: u64) -> io::Result<()> {
        let t = if ms == 0 { None } else { Some(std::time::Duration::from_millis(ms)) };
        self.stream.set_read_timeout(t)
    }
    fn shutdown(&mut self) {
        let _ = self.stream.shutdown(std::net::Shutdown::Both);
    }
}

/// True for the error kinds a read timeout produces (platform-dependent:
/// `WouldBlock` on Unix, `TimedOut` on Windows).
pub fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypermapper::EvalError;

    fn roundtrip(msg: Msg) {
        let frame = encode_frame(&msg);
        assert!(frame.ends_with('\n'));
        assert_eq!(decode_frame(&frame), Ok(msg));
    }

    #[test]
    fn frames_roundtrip() {
        roundtrip(Msg::Hello { worker: 3, epoch: 7, pid: 12345 });
        roundtrip(Msg::Heartbeat { worker: 0, epoch: 1, seq: 42 });
        roundtrip(Msg::Lease { lease_id: 9, epoch: 2, flat: 123456, attempt: 4 });
        roundtrip(Msg::Shutdown);
        roundtrip(Msg::HelloSocket { worker: 5, epoch: 3, pid: 999, token: 0 });
        roundtrip(Msg::HelloSocket { worker: 5, epoch: 3, pid: 999, token: u64::MAX });
        roundtrip(Msg::Welcome { worker: 5, epoch: 4, token: 0xdead_beef });
        roundtrip(Msg::Result {
            worker: 1,
            lease_id: 9,
            epoch: 2,
            flat: 77,
            // NaN is excluded here (NaN != NaN under PartialEq); the
            // dedicated bit-exactness test below covers it.
            outcome: RawOutcome::Ok(vec![1.5, -0.0, 6.25e-3]),
        });
        roundtrip(Msg::Result {
            worker: 2,
            lease_id: 10,
            epoch: 2,
            flat: 78,
            outcome: RawOutcome::Err {
                error: EvalError::Panicked { message: "boom with spaces %".into() },
                attempts: 3,
                elapsed_ms: 17,
            },
        });
    }

    #[test]
    fn nan_objectives_survive_bit_exactly() {
        let weird = f64::from_bits(0x7ff8_0000_dead_beef);
        let frame = encode_frame(&Msg::Result {
            worker: 0,
            lease_id: 1,
            epoch: 1,
            flat: 0,
            outcome: RawOutcome::Ok(vec![weird]),
        });
        match decode_frame(&frame) {
            Ok(Msg::Result { outcome: RawOutcome::Ok(vs), .. }) => {
                assert_eq!(vs[0].to_bits(), weird.to_bits());
            }
            other => panic!("unexpected decode: {other:?}"),
        }
    }

    #[test]
    fn garbled_frames_are_detected() {
        let frame = encode_frame(&Msg::Lease { lease_id: 1, epoch: 1, flat: 5, attempt: 1 });
        let bad = garble_frame(&frame);
        assert_ne!(frame, bad);
        assert_eq!(decode_frame(&bad), Err(FrameError::Checksum));
    }

    #[test]
    fn truncated_and_malformed_frames_are_rejected() {
        let frame = encode_frame(&Msg::Shutdown);
        let cut = &frame[..frame.len() - 3];
        assert_eq!(decode_frame(cut), Err(FrameError::Length));
        assert_eq!(decode_frame("not a frame"), Err(FrameError::Malformed));
        assert_eq!(decode_frame(""), Err(FrameError::Malformed));
        // Valid framing around an unknown body.
        let body = "warble 1 2 3";
        let line = format!("{:08x} {:08x} {body}", body.len(), crc32(body.as_bytes()));
        assert_eq!(decode_frame(&line), Err(FrameError::Body));
        // Trailing tokens after a known message are garbage, not ignored.
        let body = "shutdown now";
        let line = format!("{:08x} {:08x} {body}", body.len(), crc32(body.as_bytes()));
        assert_eq!(decode_frame(&line), Err(FrameError::Body));
    }

    #[test]
    fn frame_reader_walks_a_mixed_stream() {
        let good = encode_frame(&Msg::Heartbeat { worker: 1, epoch: 1, seq: 1 });
        let lease = encode_frame(&Msg::Lease { lease_id: 2, epoch: 1, flat: 9, attempt: 1 });
        let stream = format!("{good}garbage line\n{}{lease}", garble_frame(&good));
        let mut r = FrameReader::new(stream.as_bytes());
        assert_eq!(
            r.next_frame().unwrap(),
            Framed::Msg(Msg::Heartbeat { worker: 1, epoch: 1, seq: 1 })
        );
        assert_eq!(r.next_frame().unwrap(), Framed::Bad(FrameError::Malformed));
        assert_eq!(r.next_frame().unwrap(), Framed::Bad(FrameError::Checksum));
        assert_eq!(
            r.next_frame().unwrap(),
            Framed::Msg(Msg::Lease { lease_id: 2, epoch: 1, flat: 9, attempt: 1 })
        );
        assert_eq!(r.next_frame().unwrap(), Framed::Eof);
        assert_eq!(r.next_frame().unwrap(), Framed::Eof);
    }

    #[test]
    fn frame_reader_reports_mid_frame_eof_as_checked_error() {
        let frame = encode_frame(&Msg::Lease { lease_id: 7, epoch: 1, flat: 3, attempt: 2 });
        let cut = &frame.as_bytes()[..frame.len() - 4]; // lose newline + 3 body bytes
        let mut r = FrameReader::new(cut);
        match r.next_frame().unwrap() {
            Framed::Bad(FrameError::Length | FrameError::Checksum) => {}
            other => panic!("truncated tail must fail checked, got {other:?}"),
        }
        assert_eq!(r.next_frame().unwrap(), Framed::Eof);
    }

    #[test]
    fn frame_reader_bounds_oversize_lines_and_resyncs() {
        let good = encode_frame(&Msg::Shutdown);
        let mut stream = vec![b'x'; MAX_FRAME_LEN + 5000];
        stream.push(b'\n');
        stream.extend_from_slice(good.as_bytes());
        let mut r = FrameReader::new(&stream[..]);
        assert_eq!(r.next_frame().unwrap(), Framed::Bad(FrameError::Oversize));
        assert_eq!(r.next_frame().unwrap(), Framed::Msg(Msg::Shutdown));
        assert_eq!(r.next_frame().unwrap(), Framed::Eof);
    }

    #[test]
    fn frame_reader_retains_partials_across_timeouts() {
        // A reader that yields the frame in two chunks with a timeout error
        // between them: the partial first half must survive the error.
        struct Chunky {
            chunks: Vec<Vec<u8>>,
            timeouts_between: bool,
            last_was_data: bool,
        }
        impl io::Read for Chunky {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                if self.timeouts_between && self.last_was_data {
                    self.last_was_data = false;
                    return Err(io::Error::new(io::ErrorKind::WouldBlock, "timeout"));
                }
                match self.chunks.pop() {
                    Some(c) => {
                        buf[..c.len()].copy_from_slice(&c);
                        self.last_was_data = true;
                        Ok(c.len())
                    }
                    None => Ok(0),
                }
            }
        }
        let frame = encode_frame(&Msg::Heartbeat { worker: 2, epoch: 5, seq: 9 });
        let mid = frame.len() / 2;
        let mut r = FrameReader::new(Chunky {
            chunks: vec![frame.as_bytes()[mid..].to_vec(), frame.as_bytes()[..mid].to_vec()],
            timeouts_between: true,
            last_was_data: false,
        });
        let e = r.next_frame().expect_err("first call must surface the timeout");
        assert!(is_timeout(&e));
        assert_eq!(
            r.next_frame().unwrap(),
            Framed::Msg(Msg::Heartbeat { worker: 2, epoch: 5, seq: 9 })
        );
    }

    #[test]
    fn shared_writer_detach_fails_fast_and_reattaches() {
        let w = SharedWriter::detached();
        assert!(!w.is_attached());
        assert!(!w.send(&Msg::Shutdown));
        let buf: Arc<Mutex<Vec<u8>>> = Arc::new(Mutex::new(Vec::new()));
        struct Sink(Arc<Mutex<Vec<u8>>>);
        impl io::Write for Sink {
            fn write(&mut self, b: &[u8]) -> io::Result<usize> {
                self.0.lock().unwrap_or_else(|e| e.into_inner()).extend_from_slice(b);
                Ok(b.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        w.attach(Box::new(Sink(Arc::clone(&buf))));
        assert!(w.send(&Msg::Shutdown));
        w.detach();
        assert!(!w.send(&Msg::Shutdown));
        let got = buf.lock().unwrap_or_else(|e| e.into_inner()).clone();
        assert_eq!(String::from_utf8(got).unwrap(), encode_frame(&Msg::Shutdown));
    }
}
