//! Length-prefixed, checksummed line frames for the coordinator ↔ worker
//! pipes.
//!
//! A frame is one ASCII line:
//!
//! ```text
//! <len:08x> <crc:08x> <body>\n
//! ```
//!
//! where `len` is the byte length of `body` and `crc` is the same CRC-32
//! (ISO-HDLC) the journal uses. The body is a space-separated message whose
//! first token names the kind:
//!
//! | direction             | body                                                  |
//! |-----------------------|-------------------------------------------------------|
//! | worker → coordinator  | `hello <worker> <epoch> <pid>`                        |
//! | worker → coordinator  | `hb <worker> <epoch> <seq>`                           |
//! | worker → coordinator  | `result <worker> <lease_id> <epoch> <flat> <outcome>` |
//! | coordinator → worker  | `lease <lease_id> <epoch> <flat> <attempt>`           |
//! | coordinator → worker  | `shutdown`                                            |
//!
//! `<outcome>` is the journal's single-token [`RawOutcome`] codec
//! ([`RawOutcome::encode_wire`]), so a reply the coordinator accepts is
//! journaled byte-identically to a local evaluation. Every frame carries the
//! sender's worker epoch; the coordinator fences replies from a previous
//! incarnation by comparing it against the current epoch.
//!
//! Decoding is strict: a bad length, a bad checksum, or an unparseable body
//! all come back as a [`FrameError`], which the coordinator treats as a
//! garbled frame (revoke the sender's lease and re-grant elsewhere). There is
//! no resynchronisation protocol — frames are newline-delimited, so the
//! reader is already aligned on the next line.

use hypermapper::journal::crc32;
use hypermapper::RawOutcome;
use std::fmt;

/// A protocol message, either direction.
#[derive(Debug, Clone, PartialEq)]
pub enum Msg {
    /// Worker announces itself after spawn.
    Hello {
        /// Worker index assigned by the coordinator at spawn.
        worker: u32,
        /// Worker epoch the worker was spawned under.
        epoch: u64,
        /// OS process id, for diagnostics.
        pid: u32,
    },
    /// Periodic liveness signal from a worker's heartbeat thread.
    Heartbeat {
        /// Worker index.
        worker: u32,
        /// Worker epoch.
        epoch: u64,
        /// Monotonic heartbeat counter within this worker process.
        seq: u64,
    },
    /// Completed lease: the worker evaluated `flat` and reports the outcome.
    Result {
        /// Worker index.
        worker: u32,
        /// The lease this reply answers. Stale ids are dropped.
        lease_id: u64,
        /// Worker epoch; replies from older incarnations are fenced off.
        epoch: u64,
        /// Flat configuration index that was evaluated.
        flat: u64,
        /// The evaluation outcome in journal wire form.
        outcome: RawOutcome,
    },
    /// Coordinator grants a configuration lease to a worker.
    Lease {
        /// Unique (per coordinator) lease id; echoed back in the reply.
        lease_id: u64,
        /// Current worker epoch; the worker echoes it back.
        epoch: u64,
        /// Flat configuration index to evaluate.
        flat: u64,
        /// 1-based attempt counter for this configuration.
        attempt: u32,
    },
    /// Coordinator asks the worker to exit cleanly.
    Shutdown,
}

/// Why a frame failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The line did not have the `<len> <crc> <body>` shape.
    Malformed,
    /// The declared body length did not match the actual body.
    Length,
    /// The CRC-32 over the body did not match.
    Checksum,
    /// Framing was intact but the body was not a known message.
    Body,
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self {
            FrameError::Malformed => "malformed frame",
            FrameError::Length => "length mismatch",
            FrameError::Checksum => "checksum mismatch",
            FrameError::Body => "unparseable body",
        };
        f.write_str(what)
    }
}

fn encode_body(msg: &Msg) -> String {
    match msg {
        Msg::Hello { worker, epoch, pid } => format!("hello {worker} {epoch} {pid}"),
        Msg::Heartbeat { worker, epoch, seq } => format!("hb {worker} {epoch} {seq}"),
        Msg::Result { worker, lease_id, epoch, flat, outcome } => {
            format!("result {worker} {lease_id} {epoch} {flat} {}", outcome.encode_wire())
        }
        Msg::Lease { lease_id, epoch, flat, attempt } => {
            format!("lease {lease_id} {epoch} {flat} {attempt}")
        }
        Msg::Shutdown => "shutdown".to_string(),
    }
}

/// Encode a message as a full frame line, trailing `\n` included.
pub fn encode_frame(msg: &Msg) -> String {
    let body = encode_body(msg);
    format!("{:08x} {:08x} {body}\n", body.len(), crc32(body.as_bytes()))
}

fn decode_body(body: &str) -> Option<Msg> {
    let mut it = body.split(' ');
    let kind = it.next()?;
    let msg = match kind {
        "hello" => Msg::Hello {
            worker: it.next()?.parse().ok()?,
            epoch: it.next()?.parse().ok()?,
            pid: it.next()?.parse().ok()?,
        },
        "hb" => Msg::Heartbeat {
            worker: it.next()?.parse().ok()?,
            epoch: it.next()?.parse().ok()?,
            seq: it.next()?.parse().ok()?,
        },
        "result" => Msg::Result {
            worker: it.next()?.parse().ok()?,
            lease_id: it.next()?.parse().ok()?,
            epoch: it.next()?.parse().ok()?,
            flat: it.next()?.parse().ok()?,
            outcome: RawOutcome::decode_wire(it.next()?)?,
        },
        "lease" => Msg::Lease {
            lease_id: it.next()?.parse().ok()?,
            epoch: it.next()?.parse().ok()?,
            flat: it.next()?.parse().ok()?,
            attempt: it.next()?.parse().ok()?,
        },
        "shutdown" => Msg::Shutdown,
        _ => return None,
    };
    if it.next().is_some() {
        return None; // trailing tokens: treat as garbled, not best-effort
    }
    Some(msg)
}

/// Decode one frame line (with or without the trailing newline).
pub fn decode_frame(line: &str) -> Result<Msg, FrameError> {
    let line = line.strip_suffix('\n').unwrap_or(line);
    let (len_hex, rest) = line.split_once(' ').ok_or(FrameError::Malformed)?;
    let (crc_hex, body) = rest.split_once(' ').ok_or(FrameError::Malformed)?;
    let len = usize::from_str_radix(len_hex, 16).map_err(|_| FrameError::Malformed)?;
    let crc = u32::from_str_radix(crc_hex, 16).map_err(|_| FrameError::Malformed)?;
    if body.len() != len {
        return Err(FrameError::Length);
    }
    if crc32(body.as_bytes()) != crc {
        return Err(FrameError::Checksum);
    }
    decode_body(body).ok_or(FrameError::Body)
}

/// Corrupt a frame in a deterministic, detectable way: flip one byte of the
/// body without touching the checksum. Used by the chaos harness; the
/// receiver must report [`FrameError::Checksum`].
pub fn garble_frame(frame: &str) -> String {
    let mut bytes = frame.as_bytes().to_vec();
    // Flip a bit in the last body byte before the newline; every frame body
    // is at least one byte, and flipping 0x01 keeps it printable ASCII.
    if bytes.len() >= 2 {
        let i = bytes.len() - 2;
        bytes[i] ^= 0x01;
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypermapper::EvalError;

    fn roundtrip(msg: Msg) {
        let frame = encode_frame(&msg);
        assert!(frame.ends_with('\n'));
        assert_eq!(decode_frame(&frame), Ok(msg));
    }

    #[test]
    fn frames_roundtrip() {
        roundtrip(Msg::Hello { worker: 3, epoch: 7, pid: 12345 });
        roundtrip(Msg::Heartbeat { worker: 0, epoch: 1, seq: 42 });
        roundtrip(Msg::Lease { lease_id: 9, epoch: 2, flat: 123456, attempt: 4 });
        roundtrip(Msg::Shutdown);
        roundtrip(Msg::Result {
            worker: 1,
            lease_id: 9,
            epoch: 2,
            flat: 77,
            // NaN is excluded here (NaN != NaN under PartialEq); the
            // dedicated bit-exactness test below covers it.
            outcome: RawOutcome::Ok(vec![1.5, -0.0, 6.25e-3]),
        });
        roundtrip(Msg::Result {
            worker: 2,
            lease_id: 10,
            epoch: 2,
            flat: 78,
            outcome: RawOutcome::Err {
                error: EvalError::Panicked { message: "boom with spaces %".into() },
                attempts: 3,
                elapsed_ms: 17,
            },
        });
    }

    #[test]
    fn nan_objectives_survive_bit_exactly() {
        let weird = f64::from_bits(0x7ff8_0000_dead_beef);
        let frame = encode_frame(&Msg::Result {
            worker: 0,
            lease_id: 1,
            epoch: 1,
            flat: 0,
            outcome: RawOutcome::Ok(vec![weird]),
        });
        match decode_frame(&frame) {
            Ok(Msg::Result { outcome: RawOutcome::Ok(vs), .. }) => {
                assert_eq!(vs[0].to_bits(), weird.to_bits());
            }
            other => panic!("unexpected decode: {other:?}"),
        }
    }

    #[test]
    fn garbled_frames_are_detected() {
        let frame = encode_frame(&Msg::Lease { lease_id: 1, epoch: 1, flat: 5, attempt: 1 });
        let bad = garble_frame(&frame);
        assert_ne!(frame, bad);
        assert_eq!(decode_frame(&bad), Err(FrameError::Checksum));
    }

    #[test]
    fn truncated_and_malformed_frames_are_rejected() {
        let frame = encode_frame(&Msg::Shutdown);
        let cut = &frame[..frame.len() - 3];
        assert_eq!(decode_frame(cut), Err(FrameError::Length));
        assert_eq!(decode_frame("not a frame"), Err(FrameError::Malformed));
        assert_eq!(decode_frame(""), Err(FrameError::Malformed));
        // Valid framing around an unknown body.
        let body = "warble 1 2 3";
        let line = format!("{:08x} {:08x} {body}", body.len(), crc32(body.as_bytes()));
        assert_eq!(decode_frame(&line), Err(FrameError::Body));
        // Trailing tokens after a known message are garbage, not ignored.
        let body = "shutdown now";
        let line = format!("{:08x} {:08x} {body}", body.len(), crc32(body.as_bytes()));
        assert_eq!(decode_frame(&line), Err(FrameError::Body));
    }
}
