//! The lease table: a pure state machine over one batch of configurations.
//!
//! Each batch slot moves through `Unassigned → Leased → Done`, possibly
//! looping back to `Unassigned` when a lease is revoked (deadline expiry,
//! worker death, or a garbled reply). Every transition is driven by an
//! explicit `now_ms` argument — the table never reads a clock — so the whole
//! reassignment policy is unit-testable with synthetic timestamps.
//!
//! Idempotence lives here: a reply is keyed by `(slot, lease_id)` and judged
//! with [`LeaseTable::reply`], which accepts a result exactly once. Duplicate
//! deliveries of the accepted lease come back [`ReplyVerdict::Duplicate`];
//! replies quoting a lease that has since been revoked and re-granted come
//! back [`ReplyVerdict::Stale`]. Both are dropped by the coordinator without
//! touching the merged results, which is what makes the final front
//! independent of delivery order and delivery count.

/// Where one batch slot stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SlotState {
    /// No live lease. The slot may be granted once `now_ms` reaches its
    /// backoff eligibility time.
    Unassigned,
    /// Granted to a worker until a deadline.
    Leased {
        /// Unique lease id; replies must echo it.
        lease_id: u64,
        /// Worker index holding the lease.
        worker: u32,
        /// Absolute deadline in service-clock ms.
        deadline_ms: u64,
    },
    /// A reply was accepted; the slot's result is final.
    Done,
}

/// Outcome of presenting a reply to the table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyVerdict {
    /// First valid reply for this slot — record the result.
    Accepted,
    /// The slot is already `Done`; this is a re-delivery. Drop it.
    Duplicate,
    /// The quoted lease is not the slot's current lease (revoked, or never
    /// existed). Drop it; a live or future lease will supply the result.
    Stale,
}

#[derive(Debug, Clone)]
struct Slot {
    state: SlotState,
    /// Grants so far (1-based after the first grant).
    attempts: u32,
    /// Earliest service-clock ms at which the slot may be re-granted.
    eligible_at_ms: u64,
    /// The lease id whose reply was accepted, once `Done` via a real reply
    /// (`None` for [`LeaseTable::give_up`]). Lets the coordinator tell a
    /// retransmit of the *winning* reply apart from a loser's late echo when
    /// classifying transport-level duplicates.
    accepted: Option<u64>,
}

/// Lease bookkeeping for one batch. Slots are indexed `0..len`.
#[derive(Debug)]
pub struct LeaseTable {
    slots: Vec<Slot>,
    next_lease_id: u64,
    done: usize,
}

impl LeaseTable {
    /// A table of `n` unassigned slots.
    pub fn new(n: usize) -> Self {
        // Lease ids start at 1 so 0 can never match a real lease.
        LeaseTable::with_base(n, 1)
    }

    /// A table of `n` unassigned slots whose first lease id is `base`.
    ///
    /// A coordinator that runs *batches in sequence over the same worker
    /// pool* must thread the id counter through (`base` = the previous
    /// table's [`LeaseTable::next_lease_id`]): a worker stalled past its
    /// deadline in batch N can wake up and reply after batch N+1 has begun,
    /// and if ids restarted at 1 its stale lease id could collide with a
    /// *live* lease in the new batch and be accepted for the wrong slot.
    pub fn with_base(n: usize, base: u64) -> Self {
        LeaseTable {
            slots: vec![
                Slot { state: SlotState::Unassigned, attempts: 0, eligible_at_ms: 0, accepted: None };
                n
            ],
            next_lease_id: base.max(1),
            done: 0,
        }
    }

    /// The id the next grant will use. Feed this into
    /// [`LeaseTable::with_base`] for the following batch so ids stay unique
    /// across the pool's lifetime.
    pub fn next_lease_id(&self) -> u64 {
        self.next_lease_id
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True when the table has no slots.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Slots whose reply has been accepted.
    pub fn done_count(&self) -> usize {
        self.done
    }

    /// True once every slot is `Done`.
    pub fn all_done(&self) -> bool {
        self.done == self.slots.len()
    }

    /// Current state of a slot.
    pub fn state(&self, slot: usize) -> SlotState {
        self.slots[slot].state
    }

    /// Grants made for a slot so far.
    pub fn attempts(&self, slot: usize) -> u32 {
        self.slots[slot].attempts
    }

    /// The lease id whose reply was accepted for a `Done` slot, or `None`
    /// while the slot is live or was finished by [`LeaseTable::give_up`].
    pub fn accepted_lease(&self, slot: usize) -> Option<u64> {
        self.slots[slot].accepted
    }

    /// Lowest-indexed slot that is unassigned and past its backoff, if any.
    /// Lowest-first keeps grant order deterministic given identical event
    /// sequences, which makes chaos runs easier to reason about.
    pub fn claimable(&self, now_ms: u64) -> Option<usize> {
        self.slots
            .iter()
            .position(|s| s.state == SlotState::Unassigned && s.eligible_at_ms <= now_ms)
    }

    /// Earliest future eligibility time among unassigned slots, if every
    /// unassigned slot is still backing off. Lets the coordinator sleep just
    /// long enough instead of spinning.
    pub fn next_eligible_ms(&self, now_ms: u64) -> Option<u64> {
        self.slots
            .iter()
            .filter(|s| s.state == SlotState::Unassigned && s.eligible_at_ms > now_ms)
            .map(|s| s.eligible_at_ms)
            .min()
    }

    /// Grant `slot` to `worker` until `now_ms + lease_ms`. Returns the new
    /// `(lease_id, attempt)`, or `None` if the slot is not grantable (already
    /// leased or done) — callers pick slots via [`LeaseTable::claimable`], so
    /// `None` indicates a coordinator logic error and is surfaced as a
    /// transient failure rather than a panic.
    pub fn grant(&mut self, slot: usize, worker: u32, now_ms: u64, lease_ms: u64) -> Option<(u64, u32)> {
        let s = &mut self.slots[slot];
        if s.state != SlotState::Unassigned {
            return None;
        }
        let lease_id = self.next_lease_id;
        self.next_lease_id += 1;
        s.attempts += 1;
        s.state = SlotState::Leased { lease_id, worker, deadline_ms: now_ms.saturating_add(lease_ms) };
        Some((lease_id, s.attempts))
    }

    /// Slots whose lease deadline has passed: `(slot, worker)` pairs.
    pub fn expired(&self, now_ms: u64) -> Vec<(usize, u32)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s.state {
                SlotState::Leased { worker, deadline_ms, .. } if deadline_ms <= now_ms => {
                    Some((i, worker))
                }
                _ => None,
            })
            .collect()
    }

    /// Earliest live lease deadline, for the coordinator's wait timeout.
    pub fn next_deadline_ms(&self) -> Option<u64> {
        self.slots
            .iter()
            .filter_map(|s| match s.state {
                SlotState::Leased { deadline_ms, .. } => Some(deadline_ms),
                _ => None,
            })
            .min()
    }

    /// Revoke a slot's live lease, making it re-grantable at
    /// `now_ms + backoff_ms`. No-op unless the slot is `Leased`.
    pub fn revoke(&mut self, slot: usize, now_ms: u64, backoff_ms: u64) {
        let s = &mut self.slots[slot];
        if matches!(s.state, SlotState::Leased { .. }) {
            s.state = SlotState::Unassigned;
            s.eligible_at_ms = now_ms.saturating_add(backoff_ms);
        }
    }

    /// Revoke every lease held by `worker` (its process died or its stream
    /// garbled). Returns the revoked slot indices.
    pub fn revoke_worker(&mut self, worker: u32, now_ms: u64, backoff_ms: u64) -> Vec<usize> {
        let held: Vec<usize> = self
            .slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| match s.state {
                SlotState::Leased { worker: w, .. } if w == worker => Some(i),
                _ => None,
            })
            .collect();
        for &i in &held {
            self.revoke(i, now_ms, backoff_ms);
        }
        held
    }

    /// Judge a reply quoting `lease_id` for `slot`. On
    /// [`ReplyVerdict::Accepted`] the slot becomes `Done`.
    pub fn reply(&mut self, slot: usize, lease_id: u64) -> ReplyVerdict {
        let s = &mut self.slots[slot];
        match s.state {
            SlotState::Done => ReplyVerdict::Duplicate,
            SlotState::Leased { lease_id: current, .. } if current == lease_id => {
                s.state = SlotState::Done;
                s.accepted = Some(lease_id);
                self.done += 1;
                ReplyVerdict::Accepted
            }
            _ => ReplyVerdict::Stale,
        }
    }

    /// Force a slot `Done` without a reply (attempt budget exhausted; the
    /// coordinator records a synthetic failure for it).
    pub fn give_up(&mut self, slot: usize) {
        let s = &mut self.slots[slot];
        if s.state != SlotState::Done {
            s.state = SlotState::Done;
            self.done += 1;
        }
    }
}

/// Deterministic re-grant backoff: `base × 2^(attempt−1)`, capped. Attempt
/// is the count of grants already made (≥ 1 when a re-grant is scheduled).
/// Mirrors `RetryPolicy::backoff` in `hypermapper::resilient` so in-process
/// and cross-process retries age the same way.
pub fn regrant_backoff_ms(base_ms: u64, attempt: u32, cap_ms: u64) -> u64 {
    let shift = attempt.saturating_sub(1).min(16);
    base_ms.saturating_mul(1u64 << shift).min(cap_ms)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grant_reply_lifecycle() {
        let mut t = LeaseTable::new(3);
        assert_eq!(t.claimable(0), Some(0));
        let (id0, a0) = t.grant(0, 7, 0, 100).expect("fresh slot grants");
        assert_eq!(a0, 1);
        assert_eq!(t.claimable(0), Some(1));
        assert_eq!(t.reply(0, id0), ReplyVerdict::Accepted);
        assert_eq!(t.state(0), SlotState::Done);
        assert_eq!(t.done_count(), 1);
        assert!(!t.all_done());
        // Granting a done or leased slot is refused, not a panic.
        assert_eq!(t.grant(0, 7, 0, 100), None);
        let (id1, _) = t.grant(1, 7, 0, 100).expect("grant");
        assert_eq!(t.grant(1, 8, 0, 100), None);
        assert_eq!(t.reply(1, id1), ReplyVerdict::Accepted);
        let (id2, _) = t.grant(2, 8, 0, 100).expect("grant");
        assert_eq!(t.reply(2, id2), ReplyVerdict::Accepted);
        assert!(t.all_done());
    }

    #[test]
    fn duplicate_and_stale_replies_are_dropped() {
        let mut t = LeaseTable::new(1);
        let (id1, _) = t.grant(0, 0, 0, 50).expect("grant");
        // Deadline passes; the coordinator revokes and re-grants elsewhere.
        assert_eq!(t.expired(60), vec![(0, 0)]);
        t.revoke(0, 60, 10);
        assert_eq!(t.state(0), SlotState::Unassigned);
        // Not yet eligible during backoff, then eligible.
        assert_eq!(t.claimable(65), None);
        assert_eq!(t.next_eligible_ms(65), Some(70));
        assert_eq!(t.claimable(70), Some(0));
        let (id2, a2) = t.grant(0, 1, 70, 50).expect("re-grant");
        assert_eq!(a2, 2);
        assert_ne!(id1, id2);
        // The original worker's late reply quotes the revoked lease: stale.
        assert_eq!(t.reply(0, id1), ReplyVerdict::Stale);
        assert_eq!(t.state(0), SlotState::Leased { lease_id: id2, worker: 1, deadline_ms: 120 });
        // The live lease's reply is accepted exactly once.
        assert_eq!(t.reply(0, id2), ReplyVerdict::Accepted);
        assert_eq!(t.reply(0, id2), ReplyVerdict::Duplicate);
        assert_eq!(t.reply(0, id1), ReplyVerdict::Duplicate);
        assert_eq!(t.done_count(), 1);
    }

    #[test]
    fn revoke_worker_takes_only_its_leases() {
        let mut t = LeaseTable::new(4);
        t.grant(0, 0, 0, 100).expect("grant");
        t.grant(1, 1, 0, 100).expect("grant");
        t.grant(2, 0, 0, 100).expect("grant");
        let revoked = t.revoke_worker(0, 10, 5);
        assert_eq!(revoked, vec![0, 2]);
        assert_eq!(t.state(0), SlotState::Unassigned);
        assert!(matches!(t.state(1), SlotState::Leased { worker: 1, .. }));
        assert_eq!(t.state(2), SlotState::Unassigned);
        // Backoff applies to the revoked slots.
        assert_eq!(t.claimable(10), Some(3));
        assert_eq!(t.claimable(15), Some(0));
    }

    #[test]
    fn accepted_lease_identifies_the_winning_reply() {
        let mut t = LeaseTable::new(2);
        let (id1, _) = t.grant(0, 0, 0, 50).expect("grant");
        assert_eq!(t.accepted_lease(0), None);
        t.revoke(0, 60, 0);
        let (id2, _) = t.grant(0, 1, 60, 50).expect("re-grant");
        assert_eq!(t.reply(0, id2), ReplyVerdict::Accepted);
        // The winner is recorded; the loser's id is not it.
        assert_eq!(t.accepted_lease(0), Some(id2));
        assert_ne!(t.accepted_lease(0), Some(id1));
        // A give-up slot has no winning lease.
        t.give_up(1);
        assert_eq!(t.accepted_lease(1), None);
    }

    #[test]
    fn give_up_finishes_a_slot_without_a_reply() {
        let mut t = LeaseTable::new(2);
        let (id, _) = t.grant(0, 0, 0, 50).expect("grant");
        t.revoke(0, 50, 0);
        t.give_up(0);
        assert_eq!(t.state(0), SlotState::Done);
        // A very late reply for the abandoned slot is a duplicate, not a crash.
        assert_eq!(t.reply(0, id), ReplyVerdict::Duplicate);
        t.give_up(1);
        assert!(t.all_done());
    }

    #[test]
    fn lease_ids_continue_across_batches() {
        let mut batch1 = LeaseTable::new(2);
        let (id_a, _) = batch1.grant(0, 0, 0, 250).expect("grant");
        let (id_b, _) = batch1.grant(1, 1, 0, 250).expect("grant");
        // Worker 0 stalls; its lease expires, slot 0 is re-granted and the
        // re-grant's reply finishes the batch.
        batch1.revoke(0, 300, 0);
        let (id_c, _) = batch1.grant(0, 1, 300, 250).expect("re-grant");
        assert_eq!(batch1.reply(0, id_c), ReplyVerdict::Accepted);
        assert_eq!(batch1.reply(1, id_b), ReplyVerdict::Accepted);
        assert!(batch1.all_done());

        // The next batch starts from the previous table's counter, so the
        // stalled worker's eventual reply (quoting `id_a`) can never match a
        // live lease in the new batch.
        let mut batch2 = LeaseTable::with_base(3, batch1.next_lease_id());
        let (id_d, _) = batch2.grant(0, 2, 500, 250).expect("grant");
        assert!(id_d > id_c);
        assert_eq!(batch2.reply(0, id_a), ReplyVerdict::Stale);
        assert_eq!(batch2.reply(0, id_d), ReplyVerdict::Accepted);
    }

    #[test]
    fn regrant_backoff_doubles_and_caps() {
        assert_eq!(regrant_backoff_ms(10, 1, 1_000), 10);
        assert_eq!(regrant_backoff_ms(10, 2, 1_000), 20);
        assert_eq!(regrant_backoff_ms(10, 3, 1_000), 40);
        assert_eq!(regrant_backoff_ms(10, 8, 1_000), 1_000);
        // Huge attempt counts saturate instead of overflowing the shift.
        assert_eq!(regrant_backoff_ms(10, 4_000_000, 1_000), 1_000);
    }

    #[test]
    fn next_deadline_tracks_live_leases() {
        let mut t = LeaseTable::new(3);
        assert_eq!(t.next_deadline_ms(), None);
        t.grant(0, 0, 0, 100).expect("grant");
        t.grant(1, 1, 10, 50).expect("grant");
        assert_eq!(t.next_deadline_ms(), Some(60));
        t.revoke(1, 60, 0);
        assert_eq!(t.next_deadline_ms(), Some(100));
    }
}
