//! The service's single wall-clock site.
//!
//! Lease deadlines, heartbeat grace, and retry backoff are *liveness*
//! mechanisms: they decide **when** work is re-granted, never **what** the
//! result of a configuration is. Every accepted reply for a flat index is
//! bit-identical regardless of which attempt produced it, so timing can
//! float freely without breaking the bit-identical merge guarantee.
//!
//! To keep that argument auditable, this module is the only place in
//! `hm-service` allowed to read the wall clock (it is whitelisted in
//! hm-lint's `wall-clock-outside-timing` rule). Everything else — the lease
//! table, the chaos plan, the coordinator's reassignment policy — takes
//! `now_ms: u64` as an argument and is pure, which is also what makes those
//! state machines unit-testable without sleeping.

use std::time::Instant;

/// Monotonic milliseconds since service start.
///
/// Milliseconds are coarse enough that protocol timeouts (tens to thousands
/// of ms) are expressed naturally, and a `u64` of them never overflows in
/// practice.
#[derive(Debug, Clone, Copy)]
pub struct ServiceClock {
    origin: Instant,
}

impl ServiceClock {
    /// Start a clock at `now_ms() == 0`.
    pub fn start() -> Self {
        ServiceClock { origin: Instant::now() }
    }

    /// Milliseconds elapsed since [`ServiceClock::start`]. Monotonic.
    pub fn now_ms(&self) -> u64 {
        self.origin.elapsed().as_millis() as u64
    }
}

/// The `Duration` to sleep from `now_ms` until `wake_ms`, clamped to at
/// least 1 ms so event-loop waits never degenerate into a busy spin when a
/// deadline has just passed. Pure — used by the coordinator to size its
/// channel-receive timeout from lease deadlines and reconnect grace windows.
pub fn timeout_until(now_ms: u64, wake_ms: u64) -> std::time::Duration {
    std::time::Duration::from_millis(wake_ms.saturating_sub(now_ms).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic_and_starts_near_zero() {
        let clock = ServiceClock::start();
        let a = clock.now_ms();
        assert!(a < 1_000, "fresh clock should read near zero, got {a}");
        std::thread::sleep(std::time::Duration::from_millis(5));
        let b = clock.now_ms();
        assert!(b >= a);
        assert!(b >= 5, "5ms sleep must advance the clock, got {b}");
    }

    #[test]
    fn timeout_until_clamps_and_subtracts() {
        assert_eq!(timeout_until(100, 350), std::time::Duration::from_millis(250));
        assert_eq!(timeout_until(350, 100), std::time::Duration::from_millis(1));
        assert_eq!(timeout_until(100, 100), std::time::Duration::from_millis(1));
    }
}
