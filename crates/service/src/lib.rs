//! # hm-service — crash-tolerant multi-process exploration
//!
//! The in-process optimizer (`hypermapper`) already survives evaluator
//! panics, retries transient failures, and resumes bit-identically from a
//! write-ahead journal. What it cannot survive is the *process itself*
//! dying mid-evaluation — a segfaulting pipeline binary, an OOM-killed
//! measurement run, a board that wedges. `hm-service` moves evaluation into
//! disposable worker **processes** behind a lease protocol, so any worker
//! (and, combined with the journal, the coordinator itself) can be
//! SIGKILLed at any moment without changing a single bit of the final
//! Pareto front.
//!
//! ## Architecture
//!
//! ```text
//!  coordinator (ServicePool: implements Evaluator)
//!    │  lease <id> <epoch> <flat> <attempt>          (stdin pipe)
//!    ▼
//!  worker₀ … workerₙ   — re-exec'd current binary, worker_entry() loop
//!    │  result <w> <id> <epoch> <flat> <outcome>     (stdout pipe)
//!    │  hb <w> <epoch> <seq>                         (heartbeat thread)
//!    ▼
//!  coordinator: slot-ordered merge → bit-identical batch results
//! ```
//!
//! Since PR 9 the pipes can be TCP sockets instead: the pool listens
//! ([`TransportMode::Socket`] spawns loopback children that dial back in;
//! [`TransportMode::SocketRemote`] waits for workers started on other
//! machines with `run_socket_worker`). A `hello2`/`welcome` handshake binds
//! each connection to a worker slot via a session token, so a reconnecting
//! worker *resumes* its lease view instead of forking it, and a seeded
//! network-fault layer ([`NetChaosPlan`]) proves in CI that drops, delays,
//! reorders, retransmits, truncated frames, and partitions cannot change a
//! single result bit.
//!
//! - [`wire`] — length-prefixed, CRC-checksummed line frames; the
//!   corruption-safe [`FrameReader`] and the [`Transport`] abstraction
//!   (stdio pipes or TCP).
//! - [`lease`] — the pure lease state machine (grant / expire / revoke /
//!   idempotent reply acceptance).
//! - [`chaos`] — seeded fault injection keyed on `(flat, attempt)`:
//!   process faults (kills, stalls, freezes, garbles, duplicates, late and
//!   stale-epoch replies) and network faults (drops, delays, reorders,
//!   duplicate retransmits, mid-frame truncations, partitions, reconnect
//!   storms).
//! - [`worker`] — the child-process serve loop; [`worker_entry`] must be the
//!   first statement of any hosting binary's `main`.
//! - [`coordinator`] — [`ServicePool`]: spawning, heartbeat tracking,
//!   deadline-driven reassignment, and the merge.
//! - [`clock`] — the one permitted wall-clock site; everything else takes
//!   `now_ms` as data.
//!
//! ## Using it
//!
//! ```no_run
//! use hm_service::{worker_entry, ServiceConfig, ServicePool};
//! # fn space_and_eval() -> (hypermapper::ParamSpace, MyEval) { unimplemented!() }
//! # struct MyEval;
//! # impl hypermapper::evaluate::Evaluator for MyEval {
//! #     fn n_objectives(&self) -> usize { 2 }
//! #     fn evaluate(&self, _: &hypermapper::Configuration) -> Vec<f64> { vec![] }
//! # }
//!
//! fn main() {
//!     // Children route here and never return; the parent falls through.
//!     worker_entry(space_and_eval);
//!
//!     let (space, _) = space_and_eval();
//!     let pool = ServicePool::launch(
//!         space,
//!         2,
//!         vec!["time".into(), "error".into()],
//!         ServiceConfig::default(),
//!     )
//!     .expect("spawn workers");
//!     // `pool` implements Evaluator: hand it to HyperMapper with
//!     // eval_workers = 0 and every batch is sharded across processes.
//! }
//! ```
//!
//! ## Why results are bit-identical
//!
//! Workers evaluate flat configuration indices with a deterministic
//! evaluator, replies travel in the journal's bit-exact wire codec, the
//! lease table accepts exactly one reply per slot (duplicates, stale leases,
//! and wrong-epoch replies are dropped), and the merge is slot-ordered. See
//! `DESIGN.md` §13 for the full argument and the chaos gate that enforces
//! it in CI.

pub mod chaos;
pub mod clock;
pub mod coordinator;
pub mod lease;
pub mod wire;
pub mod worker;

pub use chaos::{ChaosPlan, Fault, NetChaosPlan, NetFault};
pub use clock::{timeout_until, ServiceClock};
pub use coordinator::{ServiceConfig, ServicePool, StatsSnapshot, TransportMode};
pub use lease::{LeaseTable, ReplyVerdict, SlotState};
pub use wire::{
    decode_frame, encode_frame, is_timeout, FrameError, FrameReader, Framed, Msg, SharedWriter,
    SocketTransport, StdioTransport, Transport, MAX_FRAME_LEN,
};
pub use worker::{run_socket_worker, worker_entry, SocketWorkerParams};
