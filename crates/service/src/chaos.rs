//! Seeded fault injection for the kill-anywhere chaos gate.
//!
//! A [`ChaosPlan`] deterministically maps `(flat configuration index,
//! attempt)` to at most one [`Fault`]. The key deliberately excludes the
//! worker id and any clock: which worker evaluates a configuration and when
//! depends on scheduling noise, but *whether that evaluation is sabotaged*
//! must not — otherwise two chaos runs with the same seed could sabotage
//! different attempt sequences and take unboundedly different paths. Keying
//! on `(flat, attempt)` makes the fault schedule a pure function of the
//! plan, so every retry rolls a fresh, reproducible die and eventually lands
//! on a clean attempt.
//!
//! None of the faults can corrupt a *result*: they kill, stall, mute, delay,
//! duplicate, garble, or mis-epoch the reply path. An accepted reply for a
//! flat index is always the worker's deterministic evaluation of that
//! configuration, which is the other half of the bit-identical-front
//! argument (see `DESIGN.md` §13).
//!
//! The plan crosses the process boundary as an environment variable
//! ([`ChaosPlan::encode`] / [`ChaosPlan::decode`]) so spawned workers
//! sabotage themselves — the coordinator stays fault-free and only ever
//! *observes* chaos.

/// One injected fault, applied by the worker while servicing a lease.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Abort the worker process without replying (SIGKILL-equivalent).
    Kill,
    /// Sleep past the lease deadline before evaluating; heartbeats continue,
    /// so only lease expiry (not death detection) can reassign the slot.
    Stall,
    /// Stop heartbeating *and* stall, without exiting: the worker looks
    /// wedged. Only heartbeat-grace expiry can reclaim it.
    Freeze,
    /// Send the reply with one byte flipped so the frame checksum fails.
    Garble,
    /// Send the (valid) reply twice.
    Duplicate,
    /// Delay the reply past the lease deadline, then send it anyway: a
    /// classic late reply racing its own replacement.
    Late,
    /// Tag the reply with the previous worker epoch, as a resurrected
    /// pre-crash worker would. The coordinator must fence it.
    StaleEpoch,
}

/// Per-fault rates in permille plus the delay magnitudes, all deterministic
/// given `seed`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChaosPlan {
    /// Root seed for the per-`(flat, attempt)` die.
    pub seed: u64,
    /// ‰ chance of [`Fault::Kill`].
    pub kill_permille: u16,
    /// ‰ chance of [`Fault::Stall`].
    pub stall_permille: u16,
    /// ‰ chance of [`Fault::Freeze`].
    pub freeze_permille: u16,
    /// ‰ chance of [`Fault::Garble`].
    pub garble_permille: u16,
    /// ‰ chance of [`Fault::Duplicate`].
    pub duplicate_permille: u16,
    /// ‰ chance of [`Fault::Late`].
    pub late_permille: u16,
    /// ‰ chance of [`Fault::StaleEpoch`].
    pub stale_epoch_permille: u16,
    /// How long [`Fault::Stall`] and [`Fault::Freeze`] sleep, in ms. Must
    /// exceed the lease deadline to exercise expiry.
    pub stall_ms: u64,
    /// How long [`Fault::Late`] delays the reply, in ms.
    pub late_ms: u64,
}

impl ChaosPlan {
    /// No faults at all.
    pub fn quiet() -> Self {
        ChaosPlan {
            seed: 0,
            kill_permille: 0,
            stall_permille: 0,
            freeze_permille: 0,
            garble_permille: 0,
            duplicate_permille: 0,
            late_permille: 0,
            stale_epoch_permille: 0,
            stall_ms: 0,
            late_ms: 0,
        }
    }

    /// The default mixed storm used by the chaos gate: every fault class
    /// enabled, ~21% of attempts sabotaged.
    pub fn storm(seed: u64) -> Self {
        ChaosPlan {
            seed,
            kill_permille: 40,
            stall_permille: 40,
            freeze_permille: 10,
            garble_permille: 30,
            duplicate_permille: 40,
            late_permille: 30,
            stale_epoch_permille: 20,
            stall_ms: 400,
            late_ms: 250,
        }
    }

    /// True when some fault has a non-zero rate.
    pub fn is_active(&self) -> bool {
        self.kill_permille
            + self.stall_permille
            + self.freeze_permille
            + self.garble_permille
            + self.duplicate_permille
            + self.late_permille
            + self.stale_epoch_permille
            > 0
    }

    /// The fault (if any) for one `(flat, attempt)` evaluation. Pure.
    pub fn fault_for(&self, flat: u64, attempt: u32) -> Option<Fault> {
        if !self.is_active() {
            return None;
        }
        let h = splitmix64(self.seed ^ splitmix64(flat.wrapping_add((attempt as u64) << 48)));
        let mut roll = (h % 1000) as u16;
        let bands = [
            (self.kill_permille, Fault::Kill),
            (self.stall_permille, Fault::Stall),
            (self.freeze_permille, Fault::Freeze),
            (self.garble_permille, Fault::Garble),
            (self.duplicate_permille, Fault::Duplicate),
            (self.late_permille, Fault::Late),
            (self.stale_epoch_permille, Fault::StaleEpoch),
        ];
        for (width, fault) in bands {
            if roll < width {
                return Some(fault);
            }
            roll -= width;
        }
        None
    }

    /// Encode for the worker environment variable: 10 comma-separated
    /// decimal fields, in declaration order.
    pub fn encode(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{}",
            self.seed,
            self.kill_permille,
            self.stall_permille,
            self.freeze_permille,
            self.garble_permille,
            self.duplicate_permille,
            self.late_permille,
            self.stale_epoch_permille,
            self.stall_ms,
            self.late_ms
        )
    }

    /// Decode an [`ChaosPlan::encode`] string; `None` on malformation.
    pub fn decode(s: &str) -> Option<Self> {
        let mut it = s.split(',');
        let plan = ChaosPlan {
            seed: it.next()?.parse().ok()?,
            kill_permille: it.next()?.parse().ok()?,
            stall_permille: it.next()?.parse().ok()?,
            freeze_permille: it.next()?.parse().ok()?,
            garble_permille: it.next()?.parse().ok()?,
            duplicate_permille: it.next()?.parse().ok()?,
            late_permille: it.next()?.parse().ok()?,
            stale_epoch_permille: it.next()?.parse().ok()?,
            stall_ms: it.next()?.parse().ok()?,
            late_ms: it.next()?.parse().ok()?,
        };
        if it.next().is_some() {
            return None;
        }
        Some(plan)
    }
}

/// One injected *network* fault, applied by a socket worker around the send
/// of a result frame. Like [`Fault`], none of these can corrupt an accepted
/// result — they lose, delay, reorder, duplicate, truncate, or sever the
/// *carrier*; the frame checksum and the lease table absorb the rest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFault {
    /// Silently drop the result frame (classic packet loss past the retry
    /// horizon). The lease expires and the coordinator re-grants.
    Drop,
    /// Hold the frame for `delay_ms` before sending (congested link).
    Delay,
    /// Hold this frame until after the *next* send (or a flush tick):
    /// out-of-order delivery at frame granularity.
    Reorder,
    /// Send the frame, force a disconnect, reconnect with the session token,
    /// and send the frame again — the TCP retransmit-after-failover shape
    /// that produces duplicate results for an already-`Done` lease.
    DupRetransmit,
    /// Write only a prefix of the frame, then sever the connection: the
    /// receiver sees a mid-frame EOF. Reconnect and retransmit in full.
    TruncateMidFrame,
    /// Sever the connection, stay dark for `partition_ms`, then reconnect
    /// with the session token and deliver the held frame.
    Partition,
    /// Disconnect and reconnect several times in quick succession before
    /// delivering (flapping link / reconnect storm).
    ReconnectStorm,
}

/// Per-fault rates for the network layer, keyed on `(flat, attempt)` exactly
/// like [`ChaosPlan`] — same argument: which *link event* sabotages a reply
/// must be a pure function of the plan, not of scheduling.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetChaosPlan {
    /// Root seed for the per-`(flat, attempt)` die. Mixed with a distinct
    /// constant so a shared seed with [`ChaosPlan`] still yields independent
    /// schedules.
    pub seed: u64,
    /// ‰ chance of [`NetFault::Drop`].
    pub drop_permille: u16,
    /// ‰ chance of [`NetFault::Delay`].
    pub delay_permille: u16,
    /// ‰ chance of [`NetFault::Reorder`].
    pub reorder_permille: u16,
    /// ‰ chance of [`NetFault::DupRetransmit`].
    pub dup_permille: u16,
    /// ‰ chance of [`NetFault::TruncateMidFrame`].
    pub truncate_permille: u16,
    /// ‰ chance of [`NetFault::Partition`].
    pub partition_permille: u16,
    /// ‰ chance of [`NetFault::ReconnectStorm`].
    pub storm_permille: u16,
    /// How long [`NetFault::Delay`] holds a frame, in ms.
    pub delay_ms: u64,
    /// How long [`NetFault::Partition`] stays dark, in ms. Should exceed the
    /// read deadline so the coordinator actually observes the half-open peer.
    pub partition_ms: u64,
}

/// Domain separator folded into the [`NetChaosPlan`] die so process faults
/// and network faults from one CLI seed never correlate.
const NET_MIX: u64 = 0x6e65_745f_6368_616f; // "net_chao"

impl NetChaosPlan {
    /// No network faults at all.
    pub fn quiet() -> Self {
        NetChaosPlan {
            seed: 0,
            drop_permille: 0,
            delay_permille: 0,
            reorder_permille: 0,
            dup_permille: 0,
            truncate_permille: 0,
            partition_permille: 0,
            storm_permille: 0,
            delay_ms: 0,
            partition_ms: 0,
        }
    }

    /// The default network storm for the socket chaos gate: every fault
    /// class enabled, ~20% of result sends sabotaged.
    pub fn storm(seed: u64) -> Self {
        NetChaosPlan {
            seed,
            drop_permille: 40,
            delay_permille: 40,
            reorder_permille: 25,
            dup_permille: 30,
            truncate_permille: 25,
            partition_permille: 25,
            storm_permille: 15,
            delay_ms: 150,
            partition_ms: 600,
        }
    }

    /// True when some fault has a non-zero rate.
    pub fn is_active(&self) -> bool {
        self.drop_permille
            + self.delay_permille
            + self.reorder_permille
            + self.dup_permille
            + self.truncate_permille
            + self.partition_permille
            + self.storm_permille
            > 0
    }

    /// The network fault (if any) for one `(flat, attempt)` result send.
    /// Pure, and independent of [`ChaosPlan::fault_for`] under a shared seed.
    pub fn fault_for(&self, flat: u64, attempt: u32) -> Option<NetFault> {
        if !self.is_active() {
            return None;
        }
        let key = flat.wrapping_add((attempt as u64) << 48);
        let h = splitmix64(self.seed ^ NET_MIX ^ splitmix64(key ^ NET_MIX));
        let mut roll = (h % 1000) as u16;
        let bands = [
            (self.drop_permille, NetFault::Drop),
            (self.delay_permille, NetFault::Delay),
            (self.reorder_permille, NetFault::Reorder),
            (self.dup_permille, NetFault::DupRetransmit),
            (self.truncate_permille, NetFault::TruncateMidFrame),
            (self.partition_permille, NetFault::Partition),
            (self.storm_permille, NetFault::ReconnectStorm),
        ];
        for (width, fault) in bands {
            if roll < width {
                return Some(fault);
            }
            roll -= width;
        }
        None
    }

    /// Encode for the worker environment variable: 10 comma-separated
    /// decimal fields, in declaration order.
    pub fn encode(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{}",
            self.seed,
            self.drop_permille,
            self.delay_permille,
            self.reorder_permille,
            self.dup_permille,
            self.truncate_permille,
            self.partition_permille,
            self.storm_permille,
            self.delay_ms,
            self.partition_ms
        )
    }

    /// Decode a [`NetChaosPlan::encode`] string; `None` on malformation.
    pub fn decode(s: &str) -> Option<Self> {
        let mut it = s.split(',');
        let plan = NetChaosPlan {
            seed: it.next()?.parse().ok()?,
            drop_permille: it.next()?.parse().ok()?,
            delay_permille: it.next()?.parse().ok()?,
            reorder_permille: it.next()?.parse().ok()?,
            dup_permille: it.next()?.parse().ok()?,
            truncate_permille: it.next()?.parse().ok()?,
            partition_permille: it.next()?.parse().ok()?,
            storm_permille: it.next()?.parse().ok()?,
            delay_ms: it.next()?.parse().ok()?,
            partition_ms: it.next()?.parse().ok()?,
        };
        if it.next().is_some() {
            return None;
        }
        Some(plan)
    }
}

/// SplitMix64 — the same tiny mixer the journal's tests use; full 64-bit
/// avalanche, so consecutive flat indices land in unrelated bands.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_schedule_is_deterministic_and_worker_free() {
        let plan = ChaosPlan::storm(42);
        for flat in 0..200u64 {
            for attempt in 1..4u32 {
                assert_eq!(plan.fault_for(flat, attempt), plan.fault_for(flat, attempt));
            }
        }
        // Different attempts re-roll: some sabotaged first attempts get a
        // clean second attempt.
        let healed = (0..500u64).any(|f| {
            plan.fault_for(f, 1).is_some() && plan.fault_for(f, 2).is_none()
        });
        assert!(healed, "retries must be able to escape the fault schedule");
    }

    #[test]
    fn storm_exercises_every_fault_class() {
        let plan = ChaosPlan::storm(7);
        let mut seen = [false; 7];
        for flat in 0..20_000u64 {
            if let Some(fault) = plan.fault_for(flat, 1) {
                let i = match fault {
                    Fault::Kill => 0,
                    Fault::Stall => 1,
                    Fault::Freeze => 2,
                    Fault::Garble => 3,
                    Fault::Duplicate => 4,
                    Fault::Late => 5,
                    Fault::StaleEpoch => 6,
                };
                seen[i] = true;
            }
        }
        assert_eq!(seen, [true; 7], "20k rolls must hit all fault classes");
    }

    #[test]
    fn quiet_plan_never_faults() {
        let plan = ChaosPlan::quiet();
        assert!(!plan.is_active());
        assert!((0..1_000u64).all(|f| plan.fault_for(f, 1).is_none()));
    }

    #[test]
    fn env_codec_roundtrips() {
        for plan in [ChaosPlan::quiet(), ChaosPlan::storm(123), ChaosPlan::storm(u64::MAX)] {
            assert_eq!(ChaosPlan::decode(&plan.encode()), Some(plan));
        }
        assert_eq!(ChaosPlan::decode(""), None);
        assert_eq!(ChaosPlan::decode("1,2,3"), None);
        let extra = format!("{},9", ChaosPlan::storm(1).encode());
        assert_eq!(ChaosPlan::decode(&extra), None);
    }

    #[test]
    fn different_seeds_give_different_schedules() {
        let a = ChaosPlan::storm(1);
        let b = ChaosPlan::storm(2);
        let differs = (0..200u64).any(|f| a.fault_for(f, 1) != b.fault_for(f, 1));
        assert!(differs);
    }

    #[test]
    fn net_storm_exercises_every_fault_class_and_is_deterministic() {
        let plan = NetChaosPlan::storm(11);
        let mut seen = [false; 7];
        for flat in 0..20_000u64 {
            assert_eq!(plan.fault_for(flat, 1), plan.fault_for(flat, 1));
            if let Some(fault) = plan.fault_for(flat, 1) {
                let i = match fault {
                    NetFault::Drop => 0,
                    NetFault::Delay => 1,
                    NetFault::Reorder => 2,
                    NetFault::DupRetransmit => 3,
                    NetFault::TruncateMidFrame => 4,
                    NetFault::Partition => 5,
                    NetFault::ReconnectStorm => 6,
                };
                seen[i] = true;
            }
        }
        assert_eq!(seen, [true; 7], "20k rolls must hit all network fault classes");
    }

    #[test]
    fn net_schedule_is_independent_of_process_schedule() {
        // Same CLI seed drives both layers; the domain separator must keep
        // the two dice uncorrelated, not mirror each other band-for-band.
        let proc_plan = ChaosPlan::storm(7);
        let net_plan = NetChaosPlan::storm(7);
        let both = (0..5_000u64)
            .filter(|&f| proc_plan.fault_for(f, 1).is_some() && net_plan.fault_for(f, 1).is_some())
            .count();
        let net_only = (0..5_000u64)
            .filter(|&f| proc_plan.fault_for(f, 1).is_none() && net_plan.fault_for(f, 1).is_some())
            .count();
        assert!(both > 0, "independent schedules must sometimes overlap");
        assert!(net_only > 0, "independent schedules must sometimes diverge");
    }

    #[test]
    fn net_quiet_plan_never_faults_and_codec_roundtrips() {
        let quiet = NetChaosPlan::quiet();
        assert!(!quiet.is_active());
        assert!((0..1_000u64).all(|f| quiet.fault_for(f, 1).is_none()));
        for plan in [quiet, NetChaosPlan::storm(123), NetChaosPlan::storm(u64::MAX)] {
            assert_eq!(NetChaosPlan::decode(&plan.encode()), Some(plan));
        }
        assert_eq!(NetChaosPlan::decode(""), None);
        assert_eq!(NetChaosPlan::decode("1,2,3"), None);
        let extra = format!("{},9", NetChaosPlan::storm(1).encode());
        assert_eq!(NetChaosPlan::decode(&extra), None);
    }
}
