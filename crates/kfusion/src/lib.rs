//! A KinectFusion-style dense SLAM pipeline.
//!
//! This crate reimplements, on the CPU with Rayon data parallelism, the
//! KFusion pipeline benchmarked by SLAMBench and tuned in the paper:
//!
//! 1. **Preprocessing** ([`preprocess`]) — depth downsampling by the
//!    *compute size ratio* and bilateral filtering,
//! 2. **Tracking** ([`tracking`]) — multi-scale projective point-to-plane
//!    ICP against the raycasted model, gated by the *ICP threshold*,
//!    *pyramid level iterations* and *tracking rate*,
//! 3. **Integration** ([`volume`]) — fusion of the depth map into a
//!    truncated signed distance function (TSDF) voxel grid of the given
//!    *volume resolution* and truncation band *µ*, every *integration
//!    rate* frames,
//! 4. **Raycasting** ([`raycast`]) — extraction of model vertex/normal maps
//!    from the zero crossing of the TSDF for the next tracking step.
//!
//! All seven algorithmic parameters explored in the paper (§III-B) are
//! exposed in [`KFusionConfig`]. The pipeline is deterministic.

pub mod config;
pub mod maps;
pub mod mesh;
pub mod pipeline;
pub mod preprocess;
pub mod raycast;
pub mod tracking;
pub mod volume;

pub use config::KFusionConfig;
pub use maps::VertexNormalMap;
pub use mesh::{extract_mesh, Mesh};
pub use pipeline::{FrameStats, KFusion, KernelTimings};
pub use tracking::{IcpResult, TrackingParams};
pub use volume::TsdfVolume;
