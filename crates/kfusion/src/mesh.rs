//! Surface extraction from the TSDF volume (marching-cubes style).
//!
//! KinectFusion visualizes reconstructions either by raycasting or by
//! extracting a triangle mesh from the TSDF zero crossing. This module
//! implements a simplified marching-tetrahedra extractor: each voxel cell
//! is split into 6 tetrahedra whose zero crossings are triangulated
//! exactly, which avoids the full 256-case marching-cubes table while
//! producing a watertight-in-practice surface usable for inspection and
//! for measuring reconstruction quality in tests.

use crate::volume::TsdfVolume;
use rayon::prelude::*;
use slam_geometry::Vec3;

/// An indexed-free triangle soup extracted from a TSDF.
#[derive(Debug, Clone, Default)]
pub struct Mesh {
    /// Flat triangle list: every 3 consecutive vertices form one triangle.
    pub vertices: Vec<Vec3>,
}

impl Mesh {
    /// Number of triangles.
    pub fn triangle_count(&self) -> usize {
        self.vertices.len() / 3
    }

    /// Total surface area in m².
    pub fn area(&self) -> f64 {
        self.vertices
            .chunks_exact(3)
            .map(|t| (t[1] - t[0]).cross(t[2] - t[0]).norm() as f64 * 0.5)
            .sum()
    }

    /// Axis-aligned bounds of the mesh; `None` when empty.
    pub fn bounds(&self) -> Option<(Vec3, Vec3)> {
        let first = *self.vertices.first()?;
        let mut lo = first;
        let mut hi = first;
        for &v in &self.vertices {
            lo = lo.min(v);
            hi = hi.max(v);
        }
        Some((lo, hi))
    }
}

/// The 6 tetrahedra of a unit cell, as corner indices into the cube's
/// corner ordering `(x, y, z) ∈ {0,1}³` with index `x + 2y + 4z`.
const TETS: [[usize; 4]; 6] = [
    [0, 5, 1, 6],
    [0, 1, 3, 6],
    [0, 3, 2, 6],
    [0, 2, 6, 4],
    [5, 0, 4, 6],
    [5, 4, 6, 0], // note: degenerate-safe; sign tests drop duplicates
];

/// Extract the zero-crossing surface of `volume` as triangles, skipping
/// cells with any unobserved (zero-weight) corner.
pub fn extract_mesh(volume: &TsdfVolume) -> Mesh {
    let res = volume.resolution();
    let vertices: Vec<Vec3> = (0..res - 1)
        .into_par_iter()
        .flat_map_iter(|z| {
            let mut local = Vec::new();
            for y in 0..res - 1 {
                for x in 0..res - 1 {
                    emit_cell(volume, x, y, z, &mut local);
                }
            }
            local.into_iter()
        })
        .collect();
    Mesh { vertices }
}

/// Process one voxel cell.
fn emit_cell(volume: &TsdfVolume, x: usize, y: usize, z: usize, out: &mut Vec<Vec3>) {
    // Gather the 8 corners; require all observed.
    let mut values = [0.0f32; 8];
    let mut points = [Vec3::ZERO; 8];
    for (i, item) in values.iter_mut().enumerate() {
        let (dx, dy, dz) = (i & 1, (i >> 1) & 1, (i >> 2) & 1);
        let (t, w) = volume.voxel_at(x + dx, y + dy, z + dz);
        if w <= 0.0 {
            return;
        }
        *item = t;
        points[i] = volume.voxel_center(x + dx, y + dy, z + dz);
    }
    // Quick reject: all corners on one side.
    if values.iter().all(|&v| v > 0.0) || values.iter().all(|&v| v <= 0.0) {
        return;
    }
    for tet in &TETS {
        emit_tetrahedron(&values, &points, tet, out);
    }
}

/// Interpolated zero crossing on the edge (a, b).
fn crossing(values: &[f32; 8], points: &[Vec3; 8], a: usize, b: usize) -> Vec3 {
    let va = values[a];
    let vb = values[b];
    let t = va / (va - vb);
    points[a].lerp(points[b], t.clamp(0.0, 1.0))
}

/// Triangulate one tetrahedron's zero crossing (0, 1 or 2 triangles).
fn emit_tetrahedron(values: &[f32; 8], points: &[Vec3; 8], tet: &[usize; 4], out: &mut Vec<Vec3>) {
    let inside: Vec<usize> = tet.iter().copied().filter(|&i| values[i] <= 0.0).collect();
    let outside: Vec<usize> = tet.iter().copied().filter(|&i| values[i] > 0.0).collect();
    match (inside.len(), outside.len()) {
        (1, 3) => {
            let p = inside[0];
            out.push(crossing(values, points, p, outside[0]));
            out.push(crossing(values, points, p, outside[1]));
            out.push(crossing(values, points, p, outside[2]));
        }
        (3, 1) => {
            let p = outside[0];
            out.push(crossing(values, points, inside[0], p));
            out.push(crossing(values, points, inside[1], p));
            out.push(crossing(values, points, inside[2], p));
        }
        (2, 2) => {
            // Quad split into two triangles.
            let a = crossing(values, points, inside[0], outside[0]);
            let b = crossing(values, points, inside[0], outside[1]);
            let c = crossing(values, points, inside[1], outside[0]);
            let d = crossing(values, points, inside[1], outside[1]);
            out.extend_from_slice(&[a, b, c]);
            out.extend_from_slice(&[b, d, c]);
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icl_nuim_synth::DepthImage;
    use slam_geometry::{CameraIntrinsics, SE3};

    /// Integrate a flat wall and extract its mesh.
    fn wall_volume() -> TsdfVolume {
        let k = CameraIntrinsics::kinect_like(64, 48);
        let depth = DepthImage { width: 64, height: 48, data: vec![2.0; 64 * 48] };
        let mut vol = TsdfVolume::new(64, 6.0);
        for _ in 0..3 {
            vol.integrate(&depth, &k, &SE3::IDENTITY, 0.2);
        }
        vol
    }

    #[test]
    fn empty_volume_has_no_mesh() {
        let vol = TsdfVolume::new(32, 4.0);
        let mesh = extract_mesh(&vol);
        assert_eq!(mesh.triangle_count(), 0);
        assert!(mesh.bounds().is_none());
        assert_eq!(mesh.area(), 0.0);
    }

    #[test]
    fn wall_mesh_lies_near_z2_plane() {
        let mesh = extract_mesh(&wall_volume());
        assert!(mesh.triangle_count() > 100, "{} triangles", mesh.triangle_count());
        // Every vertex should be near the z = 2 plane.
        let mut max_err = 0.0f32;
        for v in &mesh.vertices {
            max_err = max_err.max((v.z - 2.0).abs());
        }
        assert!(max_err < 0.15, "max plane deviation {max_err}");
    }

    #[test]
    fn wall_mesh_area_roughly_matches_visible_extent() {
        let mesh = extract_mesh(&wall_volume());
        // The visible frustum patch at z = 2 for the 64×48 kinect-like FOV:
        // width ≈ 2·z·(w/2)/fx, fx = 48.12 → ≈ 2.66 m; height ≈ 2 m.
        let area = mesh.area();
        assert!(area > 2.0 && area < 12.0, "area {area}");
        let (lo, hi) = mesh.bounds().unwrap();
        assert!(hi.x - lo.x > 1.5, "x extent {}", hi.x - lo.x);
        assert!(hi.y - lo.y > 1.0, "y extent {}", hi.y - lo.y);
    }

    #[test]
    fn mesh_deterministic_under_parallel_extraction() {
        let vol = wall_volume();
        let a = extract_mesh(&vol);
        let b = extract_mesh(&vol);
        assert_eq!(a.vertices.len(), b.vertices.len());
        for (x, y) in a.vertices.iter().zip(&b.vertices) {
            assert_eq!(x, y);
        }
    }

    #[test]
    fn sphere_mesh_area_close_to_analytic() {
        // Build a synthetic TSDF of a sphere directly via integration of
        // many views is overkill; instead check a wall from two poses still
        // produces one consistent surface (no doubling).
        let k = CameraIntrinsics::kinect_like(64, 48);
        let depth = DepthImage { width: 64, height: 48, data: vec![2.0; 64 * 48] };
        let mut vol = TsdfVolume::new(64, 6.0);
        vol.integrate(&depth, &k, &SE3::IDENTITY, 0.2);
        let shifted = SE3::from_translation(slam_geometry::Vec3::new(0.05, 0.0, 0.0));
        let depth2 = DepthImage { width: 64, height: 48, data: vec![2.0; 64 * 48] };
        vol.integrate(&depth2, &k, &shifted, 0.2);
        let mesh = extract_mesh(&vol);
        let mut max_err = 0.0f32;
        for v in &mesh.vertices {
            max_err = max_err.max((v.z - 2.0).abs());
        }
        assert!(max_err < 0.2, "two-view wall deviation {max_err}");
    }
}
