//! The truncated signed distance function (TSDF) voxel grid.

use icl_nuim_synth::DepthImage;
use rayon::prelude::*;
use slam_geometry::{CameraIntrinsics, Vec3, SE3};

/// Maximum accumulated integration weight per voxel (running-average cap,
/// as in KinectFusion).
const MAX_WEIGHT: f32 = 100.0;

/// A cubic TSDF volume centered on the world origin.
///
/// Each voxel stores a truncated signed distance (normalized to `[-1, 1]`
/// in units of µ) and an integration weight. Surfaces live at the zero
/// crossing and are extracted by raycasting ([`crate::raycast`]).
pub struct TsdfVolume {
    resolution: usize,
    size: f32,
    voxel: f32,
    /// `(tsdf, weight)` per voxel, x-major then y then z
    /// (`index = (z * res + y) * res + x`).
    data: Vec<(f32, f32)>,
}

impl TsdfVolume {
    /// Allocate an empty volume: `resolution³` voxels spanning a cube of
    /// edge `size` meters centered at the origin. All voxels start at
    /// tsdf = 1 (free/unknown), weight = 0.
    pub fn new(resolution: usize, size: f32) -> Self {
        assert!(resolution >= 8, "resolution too small");
        assert!(size > 0.0);
        TsdfVolume {
            resolution,
            size,
            voxel: size / resolution as f32,
            data: vec![(1.0, 0.0); resolution * resolution * resolution],
        }
    }

    /// Voxels per axis.
    pub fn resolution(&self) -> usize {
        self.resolution
    }

    /// Physical edge length in meters.
    pub fn size(&self) -> f32 {
        self.size
    }

    /// Voxel edge length in meters.
    pub fn voxel_size(&self) -> f32 {
        self.voxel
    }

    /// World position of the center of voxel `(x, y, z)`.
    #[inline]
    pub fn voxel_center(&self, x: usize, y: usize, z: usize) -> Vec3 {
        let half = self.size * 0.5;
        Vec3::new(
            (x as f32 + 0.5) * self.voxel - half,
            (y as f32 + 0.5) * self.voxel - half,
            (z as f32 + 0.5) * self.voxel - half,
        )
    }

    /// Raw `(tsdf, weight)` of voxel `(x, y, z)`.
    #[inline]
    pub fn voxel_at(&self, x: usize, y: usize, z: usize) -> (f32, f32) {
        self.data[(z * self.resolution + y) * self.resolution + x]
    }

    /// Trilinearly interpolated TSDF value at world point `p`; `None`
    /// outside the volume or in never-integrated (zero-weight) space.
    pub fn interp(&self, p: Vec3) -> Option<f32> {
        let half = self.size * 0.5;
        let g = Vec3::new(
            (p.x + half) / self.voxel - 0.5,
            (p.y + half) / self.voxel - 0.5,
            (p.z + half) / self.voxel - 0.5,
        );
        let x0 = g.x.floor();
        let y0 = g.y.floor();
        let z0 = g.z.floor();
        if x0 < 0.0
            || y0 < 0.0
            || z0 < 0.0
            || x0 + 1.0 >= self.resolution as f32
            || y0 + 1.0 >= self.resolution as f32
            || z0 + 1.0 >= self.resolution as f32
        {
            return None;
        }
        let (xi, yi, zi) = (x0 as usize, y0 as usize, z0 as usize);
        let (fx, fy, fz) = (g.x - x0, g.y - y0, g.z - z0);
        let mut value = 0.0;
        let mut any_weight = false;
        for dz in 0..2 {
            for dy in 0..2 {
                for dx in 0..2 {
                    let (t, w) =
                        self.voxel_at(xi + dx, yi + dy, zi + dz);
                    if w > 0.0 {
                        any_weight = true;
                    }
                    let wx = if dx == 1 { fx } else { 1.0 - fx };
                    let wy = if dy == 1 { fy } else { 1.0 - fy };
                    let wz = if dz == 1 { fz } else { 1.0 - fz };
                    value += t * wx * wy * wz;
                }
            }
        }
        if any_weight {
            Some(value)
        } else {
            None
        }
    }

    /// TSDF gradient (surface normal direction) at `p` by central
    /// differences of the interpolated field.
    pub fn gradient(&self, p: Vec3) -> Option<Vec3> {
        let h = self.voxel;
        let dx = self.interp(p + Vec3::new(h, 0.0, 0.0))? - self.interp(p - Vec3::new(h, 0.0, 0.0))?;
        let dy = self.interp(p + Vec3::new(0.0, h, 0.0))? - self.interp(p - Vec3::new(0.0, h, 0.0))?;
        let dz = self.interp(p + Vec3::new(0.0, 0.0, h))? - self.interp(p - Vec3::new(0.0, 0.0, h))?;
        let g = Vec3::new(dx, dy, dz);
        if g.norm_sq() > 0.0 {
            Some(g.normalized())
        } else {
            None
        }
    }

    /// Fuse one depth map into the volume (KinectFusion's *Integration*
    /// kernel): for every voxel, project into the camera, compare the voxel
    /// depth with the measured depth, and fold the truncated SDF sample into
    /// the running average. Parallel over z-slices.
    ///
    /// `pose` is camera-to-world; `mu` the truncation band in meters.
    pub fn integrate(&mut self, depth: &DepthImage, k: &CameraIntrinsics, pose: &SE3, mu: f32) {
        let world_to_cam = pose.inverse();
        let res = self.resolution;
        let voxel = self.voxel;
        let size = self.size;
        self.data
            .par_chunks_mut(res * res)
            .enumerate()
            .for_each(|(z, slice)| {
                let half = size * 0.5;
                let pz = (z as f32 + 0.5) * voxel - half;
                for y in 0..res {
                    let py = (y as f32 + 0.5) * voxel - half;
                    for x in 0..res {
                        let px = (x as f32 + 0.5) * voxel - half;
                        let p_cam = world_to_cam.transform_point(Vec3::new(px, py, pz));
                        if p_cam.z <= 0.0 {
                            continue;
                        }
                        let Some((u, v)) = k.project_to_pixel(p_cam) else {
                            continue;
                        };
                        let d = depth.at(u, v);
                        if d <= 0.0 {
                            continue;
                        }
                        // Signed distance along the ray, in meters.
                        let sdf = d - p_cam.z;
                        if sdf < -mu {
                            continue; // occluded, beyond the truncation band
                        }
                        let tsdf_sample = (sdf / mu).min(1.0);
                        let cell = &mut slice[y * res + x];
                        let w_new = (cell.1 + 1.0).min(MAX_WEIGHT);
                        cell.0 = (cell.0 * cell.1 + tsdf_sample) / (cell.1 + 1.0);
                        cell.1 = w_new;
                    }
                }
            });
    }

    /// Fraction of voxels that have been touched by integration.
    pub fn occupancy(&self) -> f32 {
        let touched = self.data.iter().filter(|(_, w)| *w > 0.0).count();
        touched as f32 / self.data.len() as f32
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icl_nuim_synth::{living_room, look_at, render_depth};
    use slam_geometry::CameraIntrinsics;

    fn cam() -> CameraIntrinsics {
        CameraIntrinsics::kinect_like(64, 48)
    }

    #[test]
    fn fresh_volume_is_free_space() {
        let v = TsdfVolume::new(16, 4.0);
        assert_eq!(v.voxel_at(0, 0, 0), (1.0, 0.0));
        assert_eq!(v.occupancy(), 0.0);
        assert!((v.voxel_size() - 0.25).abs() < 1e-6);
    }

    #[test]
    fn voxel_centers_span_the_cube() {
        let v = TsdfVolume::new(16, 4.0);
        let first = v.voxel_center(0, 0, 0);
        let last = v.voxel_center(15, 15, 15);
        assert!((first.x + 2.0 - 0.125).abs() < 1e-6);
        assert!((last.x - (2.0 - 0.125)).abs() < 1e-6);
        assert!((first - Vec3::splat(-1.875)).norm() < 1e-5);
        assert!((last - Vec3::splat(1.875)).norm() < 1e-5);
    }

    #[test]
    fn integrate_creates_zero_crossing_at_wall() {
        // Synthetic flat wall at z = 2 in camera == world frame.
        let k = cam();
        let depth = DepthImage { width: 64, height: 48, data: vec![2.0; 64 * 48] };
        let mut vol = TsdfVolume::new(64, 4.0);
        vol.integrate(&depth, &k, &SE3::IDENTITY, 0.2);
        // In front of the wall (z < 2): positive TSDF. Behind: negative.
        let front = vol.interp(Vec3::new(0.0, 0.0, 1.7)).unwrap();
        let behind = vol.interp(Vec3::new(0.0, 0.0, 1.95)).unwrap();
        assert!(front > 0.5, "front {front}");
        assert!(behind < front);
        // Bracket the crossing.
        let just_before = vol.interp(Vec3::new(0.0, 0.0, 1.9)).unwrap();
        let just_after = vol.interp(Vec3::new(0.0, 0.0, 2.1));
        assert!(just_before > 0.0);
        if let Some(a) = just_after {
            assert!(a <= just_before);
        }
    }

    #[test]
    fn repeated_integration_is_stable() {
        let k = cam();
        let depth = DepthImage { width: 64, height: 48, data: vec![1.5; 64 * 48] };
        let mut vol = TsdfVolume::new(32, 4.0);
        for _ in 0..5 {
            vol.integrate(&depth, &k, &SE3::IDENTITY, 0.2);
        }
        // Same observation repeatedly: the average equals the sample.
        let v = vol.interp(Vec3::new(0.0, 0.0, 1.2)).unwrap();
        assert!(v > 0.9, "{v}");
        let probe = Vec3::new(0.0, 0.0, 1.49);
        let near = vol.interp(probe).unwrap();
        assert!(near.abs() < 0.3, "{near}");
    }

    #[test]
    fn interp_outside_volume_is_none() {
        let vol = TsdfVolume::new(16, 2.0);
        assert!(vol.interp(Vec3::new(5.0, 0.0, 0.0)).is_none());
        assert!(vol.interp(Vec3::new(0.0, -1.5, 0.0)).is_none());
    }

    #[test]
    fn interp_in_unintegrated_space_is_none() {
        let vol = TsdfVolume::new(16, 2.0);
        assert!(vol.interp(Vec3::ZERO).is_none());
    }

    #[test]
    fn gradient_points_away_from_surface() {
        let k = cam();
        let depth = DepthImage { width: 64, height: 48, data: vec![2.0; 64 * 48] };
        let mut vol = TsdfVolume::new(64, 5.0);
        vol.integrate(&depth, &k, &SE3::IDENTITY, 0.3);
        // TSDF decreases toward the wall along +z, so gradient ≈ -Z.
        let g = vol.gradient(Vec3::new(0.0, 0.0, 1.85)).unwrap();
        assert!(g.z < -0.7, "gradient {g:?}");
    }

    #[test]
    fn integrate_real_scene_touches_reasonable_fraction() {
        let scene = living_room();
        let pose = look_at(Vec3::ZERO, Vec3::new(0.0, 0.0, 2.9));
        let depth = render_depth(&scene, &cam(), &pose);
        let mut vol = TsdfVolume::new(48, 7.0);
        vol.integrate(&depth, &cam(), &pose, 0.1);
        let occ = vol.occupancy();
        assert!(occ > 0.01 && occ < 0.9, "occupancy {occ}");
    }

    #[test]
    fn weight_capped() {
        let k = cam();
        let depth = DepthImage { width: 64, height: 48, data: vec![1.0; 64 * 48] };
        let mut vol = TsdfVolume::new(16, 4.0);
        for _ in 0..120 {
            vol.integrate(&depth, &k, &SE3::IDENTITY, 0.5);
        }
        let max_w = vol
            .data
            .iter()
            .map(|(_, w)| *w)
            .fold(0.0f32, f32::max);
        assert!(max_w <= MAX_WEIGHT + 1e-3);
    }
}
