//! The KFusion algorithmic parameter set (paper §III-B).

/// The seven algorithmic parameters of the SLAMBench KFusion implementation
/// explored by the paper, plus the fixed physical volume extent.
#[derive(Debug, Clone, PartialEq)]
pub struct KFusionConfig {
    /// Voxels per axis of the TSDF grid (e.g. 64, 128, 256).
    pub volume_resolution: usize,
    /// Physical edge length of the cubic reconstruction volume in meters.
    /// Fixed (not part of the explored space); must enclose the scene.
    pub volume_size: f32,
    /// TSDF truncation distance µ in meters.
    pub mu: f32,
    /// Per-level ICP iteration caps, finest level first
    /// (SLAMBench's "pyramid level iterations").
    pub pyramid_iterations: [usize; 3],
    /// Integer downsampling ratio applied to the raw depth input
    /// ("compute size ratio": 1, 2, 4 or 8).
    pub compute_size_ratio: usize,
    /// A new localization is attempted every `tracking_rate` frames.
    pub tracking_rate: usize,
    /// ICP convergence threshold: iteration stops early once the squared
    /// norm of the pose update falls below this value.
    pub icp_threshold: f32,
    /// Depth maps are fused into the volume every `integration_rate` frames.
    pub integration_rate: usize,
}

impl Default for KFusionConfig {
    /// The SLAMBench default configuration (tuned by the original authors
    /// on a desktop GPU): 256³ volume, µ = 0.1 m, pyramid 10/5/4,
    /// full-resolution input, track every frame, ICP threshold 1e-5,
    /// integrate every other frame.
    fn default() -> Self {
        KFusionConfig {
            volume_resolution: 256,
            volume_size: 7.0,
            mu: 0.1,
            pyramid_iterations: [10, 5, 4],
            compute_size_ratio: 1,
            tracking_rate: 1,
            icp_threshold: 1e-5,
            integration_rate: 2,
        }
    }
}

impl KFusionConfig {
    /// Validate parameter sanity; returns a description of the first
    /// problem found.
    pub fn validate(&self) -> Result<(), String> {
        if self.volume_resolution < 8 {
            return Err(format!("volume_resolution {} too small", self.volume_resolution));
        }
        if !(self.volume_size > 0.0) {
            return Err("volume_size must be positive".into());
        }
        if !(self.mu > 0.0) {
            return Err("mu must be positive".into());
        }
        if self.compute_size_ratio == 0 || !self.compute_size_ratio.is_power_of_two() {
            return Err(format!("compute_size_ratio {} must be a power of two", self.compute_size_ratio));
        }
        if self.tracking_rate == 0 || self.integration_rate == 0 {
            return Err("rates must be >= 1".into());
        }
        if !(self.icp_threshold >= 0.0) {
            return Err("icp_threshold must be non-negative".into());
        }
        Ok(())
    }

    /// Voxel edge length in meters.
    pub fn voxel_size(&self) -> f32 {
        self.volume_size / self.volume_resolution as f32
    }

    /// A lightweight configuration for tests: small volume, small images.
    pub fn small() -> Self {
        KFusionConfig {
            volume_resolution: 64,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_slambench() {
        let c = KFusionConfig::default();
        c.validate().unwrap();
        assert_eq!(c.volume_resolution, 256);
        assert!((c.mu - 0.1).abs() < 1e-9);
        assert_eq!(c.pyramid_iterations, [10, 5, 4]);
        assert_eq!(c.compute_size_ratio, 1);
        assert_eq!(c.tracking_rate, 1);
        assert_eq!(c.integration_rate, 2);
    }

    #[test]
    fn voxel_size() {
        let c = KFusionConfig { volume_resolution: 70, volume_size: 7.0, ..Default::default() };
        assert!((c.voxel_size() - 0.1).abs() < 1e-6);
    }

    #[test]
    fn validation_catches_bad_values() {
        let mut c = KFusionConfig::default();
        c.volume_resolution = 4;
        assert!(c.validate().is_err());
        let mut c = KFusionConfig::default();
        c.mu = 0.0;
        assert!(c.validate().is_err());
        let mut c = KFusionConfig::default();
        c.compute_size_ratio = 3;
        assert!(c.validate().is_err());
        let mut c = KFusionConfig::default();
        c.tracking_rate = 0;
        assert!(c.validate().is_err());
        let mut c = KFusionConfig::default();
        c.icp_threshold = f32::NAN;
        assert!(c.validate().is_err());
    }
}
