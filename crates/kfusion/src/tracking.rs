//! Multi-scale projective point-to-plane ICP (KinectFusion's *Tracking*).

use crate::maps::{DepthPyramid, VertexNormalMap};
use rayon::prelude::*;
use slam_geometry::{solve::NormalEquations, CameraIntrinsics, SE3};

/// Data-association gates and convergence controls for ICP.
#[derive(Debug, Clone)]
pub struct TrackingParams {
    /// Reject correspondences farther apart than this (meters).
    pub dist_threshold: f32,
    /// Reject correspondences whose normals disagree by more than this
    /// (cosine of the angle).
    pub normal_threshold: f32,
    /// Stop iterating a level once the norm of the twist update drops
    /// below this — the paper's *ICP threshold* parameter (SLAMBench
    /// semantics: `norm(x) < icp_threshold`).
    pub icp_threshold: f32,
    /// Per-level iteration caps, finest level first — the paper's
    /// *pyramid level iterations*.
    pub iterations: [usize; 3],
    /// Minimum fraction of pixels with valid correspondences for the
    /// result to count as tracked.
    pub min_inlier_fraction: f32,
}

impl Default for TrackingParams {
    fn default() -> Self {
        TrackingParams {
            dist_threshold: 0.1,
            normal_threshold: 0.8,
            icp_threshold: 1e-5,
            iterations: [10, 5, 4],
            min_inlier_fraction: 0.1,
        }
    }
}

/// Outcome of a tracking attempt.
#[derive(Debug, Clone)]
pub struct IcpResult {
    /// Refined camera-to-world pose.
    pub pose: SE3,
    /// Whether tracking succeeded (enough inliers and a solvable system).
    pub tracked: bool,
    /// Final RMS point-to-plane residual (meters).
    pub rms_error: f32,
    /// Fraction of pixels that found a valid correspondence at the finest
    /// level of the last iteration.
    pub inlier_fraction: f32,
    /// Total ICP iterations actually executed across all levels.
    pub iterations_run: usize,
}

/// One ICP iteration: build and solve the point-to-plane normal equations
/// between the current depth-map vertices (camera frame) and the model
/// maps (world frame, from raycasting), under the pose estimate `pose`.
///
/// Returns `(twist, rms, inlier_fraction)`; `None` when the system is
/// degenerate.
fn icp_step(
    current: &VertexNormalMap,
    model: &VertexNormalMap,
    model_k: &CameraIntrinsics,
    model_pose: &SE3,
    pose: &SE3,
    params: &TrackingParams,
) -> Option<([f32; 6], f32, f32)> {
    let world_to_model_cam = model_pose.inverse();
    // Parallel reduction over rows of the current map.
    let ne = (0..current.height)
        .into_par_iter()
        .map(|v| {
            let mut acc = NormalEquations::<6>::default();
            for u in 0..current.width {
                if !current.is_valid(u, v) {
                    continue;
                }
                let p_cam = current.vertex(u, v);
                let p_world = pose.transform_point(p_cam);
                // Project into the model (reference) camera for association.
                let p_model_cam = world_to_model_cam.transform_point(p_world);
                let Some((mu_, mv_)) = model_k.project_to_pixel(p_model_cam) else {
                    continue;
                };
                if !model.is_valid(mu_, mv_) {
                    continue;
                }
                let q_world = model.vertex(mu_, mv_);
                let n_world = model.normal(mu_, mv_);
                if (p_world - q_world).norm() > params.dist_threshold {
                    continue;
                }
                let n_cur_world = pose.transform_dir(current.normal(u, v));
                if n_cur_world.dot(n_world) < params.normal_threshold {
                    continue;
                }
                let r = n_world.dot(q_world - p_world);
                let cross = p_world.cross(n_world);
                let j = [n_world.x, n_world.y, n_world.z, cross.x, cross.y, cross.z];
                acc.add_row(&j, r, 1.0);
            }
            acc
        })
        .reduce(NormalEquations::<6>::default, |mut a, b| {
            a.merge(&b);
            a
        });

    // An under-constrained system (too few correspondences for 6 DoF)
    // produces wild updates; refuse to solve it.
    const MIN_CORRESPONDENCES: usize = 30;
    if ne.count < MIN_CORRESPONDENCES {
        return None;
    }
    let total = current.valid_count().max(1);
    let inlier_fraction = ne.count as f32 / total as f32;
    let twist = ne.solve(1e-6)?;
    Some((twist, ne.rms(), inlier_fraction))
}

/// Track the camera by aligning the depth pyramid of the incoming frame to
/// the raycasted model maps, coarse-to-fine.
///
/// * `pyramid` — depth pyramid of the current frame (finest level 0),
/// * `model` — world-frame model maps raycast from `model_pose`,
/// * `model_k` — intrinsics used for the raycast (finest level),
/// * `model_pose` — the camera pose the model maps were raycast from
///   (projective association happens in that camera's pixel grid),
/// * `initial` — pose prediction (usually the previous frame's pose).
pub fn track(
    pyramid: &DepthPyramid,
    model: &VertexNormalMap,
    model_k: &CameraIntrinsics,
    model_pose: &SE3,
    initial: &SE3,
    params: &TrackingParams,
) -> IcpResult {
    let mut pose = *initial;
    let mut rms = f32::INFINITY;
    let mut inliers = 0.0f32;
    let mut iterations_run = 0usize;

    // Coarse (highest index) to fine (level 0).
    for level in (0..pyramid.levels.len()).rev() {
        let (depth, k) = &pyramid.levels[level];
        let current = VertexNormalMap::from_depth(depth, k);
        let max_iters = params.iterations.get(level).copied().unwrap_or(4);
        for _ in 0..max_iters {
            let Some((twist, level_rms, frac)) =
                icp_step(&current, model, model_k, model_pose, &pose, params)
            else {
                break;
            };
            pose = SE3::exp(twist).compose(&pose).normalized();
            rms = level_rms;
            inliers = frac;
            iterations_run += 1;
            let step_norm: f32 = twist.iter().map(|t| t * t).sum::<f32>().sqrt();
            if step_norm < params.icp_threshold {
                break;
            }
        }
    }

    let tracked = rms.is_finite() && inliers >= params.min_inlier_fraction;
    IcpResult {
        pose: if tracked { pose } else { *initial },
        tracked,
        rms_error: if rms.is_finite() { rms } else { 0.0 },
        inlier_fraction: inliers,
        iterations_run,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::maps::DepthPyramid;
    use icl_nuim_synth::{living_room, look_at, render_depth};
    use slam_geometry::{Quat, Vec3};

    fn cam() -> CameraIntrinsics {
        CameraIntrinsics::kinect_like(80, 60)
    }

    /// Model maps straight from ground truth geometry (bypassing the TSDF)
    /// to test ICP in isolation.
    fn gt_model(pose: &SE3) -> VertexNormalMap {
        let scene = living_room();
        let k = cam();
        let depth = render_depth(&scene, &k, pose);
        let mut map = VertexNormalMap::from_depth(&depth, &k);
        // Lift to world frame.
        for i in 0..map.vertices.len() {
            if map.normals[i].norm_sq() > 0.25 {
                map.vertices[i] = pose.transform_point(map.vertices[i]);
                map.normals[i] = pose.transform_dir(map.normals[i]);
            }
        }
        map
    }

    fn pyramid_at(pose: &SE3) -> DepthPyramid {
        let scene = living_room();
        let k = cam();
        let depth = render_depth(&scene, &k, pose);
        DepthPyramid::build(depth, k, 3, &[0, 1, 1])
    }

    #[test]
    fn icp_recovers_small_translation() {
        let ref_pose = look_at(Vec3::new(0.0, -0.1, -0.2), Vec3::new(0.3, 0.5, 2.9));
        let true_pose = SE3::from_translation(Vec3::new(0.02, -0.015, 0.01)).compose(&ref_pose);
        let model = gt_model(&ref_pose);
        let pyr = pyramid_at(&true_pose);
        let res = track(&pyr, &model, &cam(), &ref_pose, &ref_pose, &TrackingParams::default());
        assert!(res.tracked);
        let err = res.pose.translation_dist(&true_pose);
        assert!(err < 0.015, "translation error {err}");
    }

    #[test]
    fn icp_recovers_small_rotation() {
        let ref_pose = look_at(Vec3::new(0.2, 0.0, 0.0), Vec3::new(-1.5, 0.8, 2.0));
        let dq = Quat::from_axis_angle(Vec3::new(0.3, 1.0, 0.1), 0.02);
        let true_pose = SE3::from_quat_translation(dq, Vec3::new(0.005, 0.0, -0.008)).compose(&ref_pose);
        let model = gt_model(&ref_pose);
        let pyr = pyramid_at(&true_pose);
        let res = track(&pyr, &model, &cam(), &ref_pose, &ref_pose, &TrackingParams::default());
        assert!(res.tracked);
        assert!(res.pose.translation_dist(&true_pose) < 0.012, "t err {}", res.pose.translation_dist(&true_pose));
        assert!(res.pose.rotation_dist(&true_pose) < 0.012, "r err {}", res.pose.rotation_dist(&true_pose));
    }

    #[test]
    fn perfect_initialization_stays_put() {
        let pose = look_at(Vec3::new(0.0, 0.0, -0.4), Vec3::new(0.5, 0.6, 2.9));
        let model = gt_model(&pose);
        let pyr = pyramid_at(&pose);
        let res = track(&pyr, &model, &cam(), &pose, &pose, &TrackingParams::default());
        assert!(res.tracked);
        assert!(res.pose.translation_dist(&pose) < 2e-3);
        assert!(res.rms_error < 0.01);
    }

    #[test]
    fn loose_icp_threshold_runs_fewer_iterations() {
        let ref_pose = look_at(Vec3::new(0.0, -0.1, -0.2), Vec3::new(0.3, 0.5, 2.9));
        let true_pose = SE3::from_translation(Vec3::new(0.03, 0.0, 0.015)).compose(&ref_pose);
        let model = gt_model(&ref_pose);
        let pyr = pyramid_at(&true_pose);
        let tight = track(
            &pyr,
            &model,
            &cam(),
            &ref_pose,
            &ref_pose,
            &TrackingParams { icp_threshold: 1e-10, ..Default::default() },
        );
        let loose = track(
            &pyr,
            &model,
            &cam(),
            &ref_pose,
            &ref_pose,
            &TrackingParams { icp_threshold: 1e-2, ..Default::default() },
        );
        assert!(
            loose.iterations_run < tight.iterations_run,
            "loose {} vs tight {}",
            loose.iterations_run,
            tight.iterations_run
        );
        // The loose variant is (weakly) less accurate.
        assert!(loose.pose.translation_dist(&true_pose) + 1e-6 >= tight.pose.translation_dist(&true_pose) * 0.2);
    }

    #[test]
    fn tracking_fails_gracefully_without_overlap() {
        // Model from one side of the room, frame from the opposite side
        // looking the other way: no valid correspondences.
        let ref_pose = look_at(Vec3::new(0.0, 0.0, -0.5), Vec3::new(0.0, 0.5, 2.9));
        let far_pose = look_at(Vec3::new(0.0, 0.0, 0.5), Vec3::new(0.0, 0.5, -2.9));
        let model = gt_model(&ref_pose);
        let pyr = pyramid_at(&far_pose);
        let res = track(&pyr, &model, &cam(), &ref_pose, &far_pose, &TrackingParams::default());
        assert!(!res.tracked);
        // Pose is left at the initial estimate.
        assert!(res.pose.translation_dist(&far_pose) < 1e-6);
    }

    #[test]
    fn zero_iterations_is_a_noop() {
        let pose = look_at(Vec3::ZERO, Vec3::new(0.0, 0.5, 2.9));
        let model = gt_model(&pose);
        let pyr = pyramid_at(&pose);
        let res = track(
            &pyr,
            &model,
            &cam(),
            &pose,
            &pose,
            &TrackingParams { iterations: [0, 0, 0], ..Default::default() },
        );
        assert_eq!(res.iterations_run, 0);
        assert!(!res.tracked); // nothing ran, nothing measured
    }
}
