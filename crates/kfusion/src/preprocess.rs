//! Depth preprocessing: downsampling and bilateral filtering.

use icl_nuim_synth::DepthImage;
use rayon::prelude::*;

/// Downsample a depth image by an integer `ratio` using block averaging of
/// the valid pixels in each `ratio × ratio` block (SLAMBench's
/// `mm2metersKernel` resize semantics). `ratio == 1` is a cheap clone.
pub fn downsample(depth: &DepthImage, ratio: usize) -> DepthImage {
    assert!(ratio >= 1, "ratio must be >= 1");
    if ratio == 1 {
        return depth.clone();
    }
    let w = (depth.width / ratio).max(1);
    let h = (depth.height / ratio).max(1);
    let mut data = vec![0.0f32; w * h];
    data.par_chunks_mut(w).enumerate().for_each(|(y, row)| {
        for (x, out) in row.iter_mut().enumerate() {
            let mut sum = 0.0f32;
            let mut count = 0u32;
            for dy in 0..ratio {
                for dx in 0..ratio {
                    let sy = y * ratio + dy;
                    let sx = x * ratio + dx;
                    if sy < depth.height && sx < depth.width {
                        let d = depth.at(sx, sy);
                        if d > 0.0 {
                            sum += d;
                            count += 1;
                        }
                    }
                }
            }
            // Require a majority of valid samples, as SLAMBench does, to
            // avoid smearing depth across silhouette edges.
            if count as usize * 2 > ratio * ratio {
                *out = sum / count as f32;
            }
        }
    });
    DepthImage { width: w, height: h, data }
}

/// Edge-preserving bilateral filter on a depth image (the paper's
/// *Preprocessing* kernel). `radius` is the half window (SLAMBench uses 2),
/// `sigma_space` the spatial Gaussian in pixels, `sigma_depth` the range
/// Gaussian in meters. Invalid pixels stay invalid and do not contaminate
/// neighbors.
pub fn bilateral_filter(
    depth: &DepthImage,
    radius: usize,
    sigma_space: f32,
    sigma_depth: f32,
) -> DepthImage {
    let w = depth.width;
    let h = depth.height;
    let inv_2ss = 1.0 / (2.0 * sigma_space * sigma_space);
    let inv_2sd = 1.0 / (2.0 * sigma_depth * sigma_depth);
    // Precompute the spatial kernel.
    let k = 2 * radius + 1;
    let mut spatial = vec![0.0f32; k * k];
    for dy in 0..k {
        for dx in 0..k {
            let fy = dy as f32 - radius as f32;
            let fx = dx as f32 - radius as f32;
            spatial[dy * k + dx] = (-(fx * fx + fy * fy) * inv_2ss).exp();
        }
    }

    let mut data = vec![0.0f32; w * h];
    data.par_chunks_mut(w).enumerate().for_each(|(y, row)| {
        for (x, out) in row.iter_mut().enumerate() {
            let center = depth.at(x, y);
            if center <= 0.0 {
                continue;
            }
            let mut sum = 0.0f32;
            let mut weight = 0.0f32;
            for dy in 0..k {
                let sy = y as isize + dy as isize - radius as isize;
                if sy < 0 || sy >= h as isize {
                    continue;
                }
                for dx in 0..k {
                    let sx = x as isize + dx as isize - radius as isize;
                    if sx < 0 || sx >= w as isize {
                        continue;
                    }
                    let d = depth.at(sx as usize, sy as usize);
                    if d <= 0.0 {
                        continue;
                    }
                    let dd = d - center;
                    let wgt = spatial[dy * k + dx] * (-(dd * dd) * inv_2sd).exp();
                    sum += wgt * d;
                    weight += wgt;
                }
            }
            *out = if weight > 0.0 { sum / weight } else { center };
        }
    });
    DepthImage { width: w, height: h, data }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image(w: usize, h: usize, f: impl Fn(usize, usize) -> f32) -> DepthImage {
        let mut data = vec![0.0; w * h];
        for y in 0..h {
            for x in 0..w {
                data[y * w + x] = f(x, y);
            }
        }
        DepthImage { width: w, height: h, data }
    }

    #[test]
    fn downsample_halves_dimensions() {
        let img = image(16, 12, |_, _| 2.0);
        let half = downsample(&img, 2);
        assert_eq!((half.width, half.height), (8, 6));
        assert!(half.data.iter().all(|&d| (d - 2.0).abs() < 1e-6));
        let eighth = downsample(&img, 8);
        assert_eq!((eighth.width, eighth.height), (2, 1));
    }

    #[test]
    fn downsample_ratio_one_is_identity() {
        let img = image(8, 8, |x, y| (x + y) as f32 * 0.1 + 0.5);
        assert_eq!(downsample(&img, 1), img);
    }

    #[test]
    fn downsample_averages_blocks() {
        let img = image(4, 4, |x, y| if (x, y) == (0, 0) { 1.0 } else { 3.0 });
        let out = downsample(&img, 2);
        // Top-left block = {1, 3, 3, 3} → mean 2.5.
        assert!((out.at(0, 0) - 2.5).abs() < 1e-6);
        assert!((out.at(1, 1) - 3.0).abs() < 1e-6);
    }

    #[test]
    fn downsample_majority_invalid_gives_invalid() {
        let img = image(4, 4, |x, y| if y < 2 && x < 2 && (x, y) != (0, 0) { 0.0 } else { 2.0 });
        // Top-left 2×2 block has 3 invalid of 4 → invalid output.
        let out = downsample(&img, 2);
        assert_eq!(out.at(0, 0), 0.0);
    }

    #[test]
    fn bilateral_smooths_noise() {
        // Constant 2 m plane with a deterministic ripple.
        let img = image(32, 32, |x, y| 2.0 + 0.01 * (((x * 7 + y * 13) % 5) as f32 - 2.0));
        let out = bilateral_filter(&img, 2, 1.5, 0.1);
        let var = |im: &DepthImage| {
            let mean: f32 = im.data.iter().sum::<f32>() / im.data.len() as f32;
            im.data.iter().map(|d| (d - mean) * (d - mean)).sum::<f32>() / im.data.len() as f32
        };
        assert!(var(&out) < var(&img) * 0.5, "{} vs {}", var(&out), var(&img));
    }

    #[test]
    fn bilateral_preserves_edges() {
        // Step edge: left half at 1 m, right half at 3 m.
        let img = image(32, 32, |x, _| if x < 16 { 1.0 } else { 3.0 });
        let out = bilateral_filter(&img, 2, 1.5, 0.05);
        // Pixels adjacent to the edge keep their side's depth (range kernel
        // rejects the other side).
        assert!((out.at(15, 16) - 1.0).abs() < 0.01);
        assert!((out.at(16, 16) - 3.0).abs() < 0.01);
    }

    #[test]
    fn bilateral_keeps_invalid_invalid() {
        let mut img = image(8, 8, |_, _| 2.0);
        img.data[3 * 8 + 4] = 0.0;
        let out = bilateral_filter(&img, 2, 1.5, 0.1);
        assert_eq!(out.at(4, 3), 0.0);
        // And neighbors are unaffected by the hole.
        assert!((out.at(5, 3) - 2.0).abs() < 1e-6);
    }
}
