//! Vertex/normal maps and the depth pyramid.

use icl_nuim_synth::DepthImage;
use rayon::prelude::*;
use slam_geometry::{CameraIntrinsics, Vec3};

/// Per-pixel 3D vertices and normals derived from a depth map. Invalid
/// pixels carry `Vec3::ZERO` normals.
#[derive(Debug, Clone)]
pub struct VertexNormalMap {
    pub width: usize,
    pub height: usize,
    /// Camera- or world-frame points (depending on producer).
    pub vertices: Vec<Vec3>,
    /// Unit normals; `Vec3::ZERO` marks invalid pixels.
    pub normals: Vec<Vec3>,
}

impl VertexNormalMap {
    /// Vertex at `(u, v)`.
    #[inline]
    pub fn vertex(&self, u: usize, v: usize) -> Vec3 {
        self.vertices[v * self.width + u]
    }

    /// Normal at `(u, v)`; zero when invalid.
    #[inline]
    pub fn normal(&self, u: usize, v: usize) -> Vec3 {
        self.normals[v * self.width + u]
    }

    /// Whether pixel `(u, v)` carries a valid vertex+normal.
    #[inline]
    pub fn is_valid(&self, u: usize, v: usize) -> bool {
        self.normals[v * self.width + u].norm_sq() > 0.25
    }

    /// Number of valid pixels.
    pub fn valid_count(&self) -> usize {
        self.normals.iter().filter(|n| n.norm_sq() > 0.25).count()
    }

    /// Compute camera-frame vertices (back-projection) and normals (cross
    /// product of image-space finite differences) from a depth map —
    /// SLAMBench's `depth2vertex` + `vertex2normal` kernels.
    pub fn from_depth(depth: &DepthImage, k: &CameraIntrinsics) -> VertexNormalMap {
        let w = depth.width;
        let h = depth.height;
        debug_assert_eq!(w, k.width);
        debug_assert_eq!(h, k.height);
        let mut vertices = vec![Vec3::ZERO; w * h];
        vertices
            .par_chunks_mut(w)
            .enumerate()
            .for_each(|(v, row)| {
                for u in 0..w {
                    let d = depth.at(u, v);
                    if d > 0.0 {
                        row[u] = k.backproject(u as f32, v as f32, d);
                    }
                }
            });

        let mut normals = vec![Vec3::ZERO; w * h];
        normals
            .par_chunks_mut(w)
            .enumerate()
            .for_each(|(v, row)| {
                if v + 1 >= h {
                    return;
                }
                for u in 0..w.saturating_sub(1) {
                    let p = vertices[v * w + u];
                    let px = vertices[v * w + u + 1];
                    let py = vertices[(v + 1) * w + u];
                    if p.z > 0.0 && px.z > 0.0 && py.z > 0.0 {
                        let n = (px - p).cross(py - p).normalized();
                        // Orient toward the camera (-z facing).
                        row[u] = if n.dot(p) > 0.0 { -n } else { n };
                    }
                }
            });
        VertexNormalMap { width: w, height: h, vertices, normals }
    }
}

/// Depth band (meters) for edge-aware averaging: samples farther than this
/// from the reference pixel are treated as belonging to another surface
/// (SLAMBench's `halfSampleRobustImage` uses `3·e_d` with `e_d = 0.1 m`;
/// we use a tighter band because the synthetic sensor is cleaner).
const EDGE_BAND: f32 = 0.1;

/// Halve a depth image with an **edge-aware** 2×2 block average (SLAMBench's
/// `halfSampleRobustImage`): only samples within `EDGE_BAND` (0.1 m) of the block's
/// reference pixel are averaged, so silhouette edges never produce phantom
/// slanted surfaces. `iterations` extra edge-aware 3×3 smoothing passes
/// model the "block averaging iterations" pyramid parameter.
pub fn half_sample(depth: &DepthImage, iterations: usize) -> DepthImage {
    let w = (depth.width / 2).max(1);
    let h = (depth.height / 2).max(1);
    let mut data = vec![0.0f32; w * h];
    data.par_chunks_mut(w).enumerate().for_each(|(y, row)| {
        for (x, out) in row.iter_mut().enumerate() {
            let reference = depth.at((x * 2).min(depth.width - 1), (y * 2).min(depth.height - 1));
            if reference <= 0.0 {
                continue;
            }
            let mut sum = 0.0;
            let mut count = 0;
            for dy in 0..2 {
                for dx in 0..2 {
                    let sx = (x * 2 + dx).min(depth.width - 1);
                    let sy = (y * 2 + dy).min(depth.height - 1);
                    let d = depth.at(sx, sy);
                    if d > 0.0 && (d - reference).abs() <= EDGE_BAND {
                        sum += d;
                        count += 1;
                    }
                }
            }
            if count > 0 {
                *out = sum / count as f32;
            }
        }
    });
    let mut img = DepthImage { width: w, height: h, data };
    for _ in 0..iterations {
        img = box_smooth(&img);
    }
    img
}

/// One edge-aware 3×3 box smoothing pass (samples outside [`EDGE_BAND`] of
/// the center are excluded).
fn box_smooth(depth: &DepthImage) -> DepthImage {
    let w = depth.width;
    let h = depth.height;
    let mut data = vec![0.0f32; w * h];
    data.par_chunks_mut(w).enumerate().for_each(|(y, row)| {
        for (x, out) in row.iter_mut().enumerate() {
            let center = depth.at(x, y);
            if center <= 0.0 {
                continue;
            }
            let mut sum = 0.0;
            let mut count = 0;
            for dy in -1i32..=1 {
                for dx in -1i32..=1 {
                    let sx = x as i32 + dx;
                    let sy = y as i32 + dy;
                    if sx >= 0 && sy >= 0 && (sx as usize) < w && (sy as usize) < h {
                        let d = depth.at(sx as usize, sy as usize);
                        if d > 0.0 && (d - center).abs() <= EDGE_BAND {
                            sum += d;
                            count += 1;
                        }
                    }
                }
            }
            *out = sum / count as f32;
        }
    });
    DepthImage { width: w, height: h, data }
}

/// A three-level depth pyramid with per-level intrinsics; level 0 is the
/// finest.
pub struct DepthPyramid {
    pub levels: Vec<(DepthImage, CameraIntrinsics)>,
}

impl DepthPyramid {
    /// Build a pyramid of `n_levels` from a (already downsampled, filtered)
    /// depth image, applying `iterations[l]` smoothing passes when building
    /// level `l` (level 0 uses the input unchanged).
    pub fn build(
        depth: DepthImage,
        k: CameraIntrinsics,
        n_levels: usize,
        iterations: &[usize],
    ) -> DepthPyramid {
        assert!(n_levels >= 1);
        let mut levels = Vec::with_capacity(n_levels);
        levels.push((depth, k));
        for l in 1..n_levels {
            let (prev, pk) = &levels[l - 1];
            let iters = iterations.get(l).copied().unwrap_or(0);
            let next = half_sample(prev, iters);
            let nk = pk.downscaled(2);
            levels.push((next, nk));
        }
        DepthPyramid { levels }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icl_nuim_synth::{living_room, look_at, render_depth};

    fn k() -> CameraIntrinsics {
        CameraIntrinsics::kinect_like(64, 48)
    }

    fn rendered() -> DepthImage {
        let scene = living_room();
        let pose = look_at(Vec3::new(0.2, -0.1, 0.0), Vec3::new(0.5, 0.5, 2.9));
        render_depth(&scene, &k(), &pose)
    }

    #[test]
    fn vertices_backproject_depth() {
        let depth = rendered();
        let map = VertexNormalMap::from_depth(&depth, &k());
        for v in (0..48).step_by(5) {
            for u in (0..64).step_by(5) {
                let d = depth.at(u, v);
                if d > 0.0 {
                    assert!((map.vertex(u, v).z - d).abs() < 1e-5);
                }
            }
        }
    }

    #[test]
    fn normals_unit_and_camera_facing() {
        let depth = rendered();
        let map = VertexNormalMap::from_depth(&depth, &k());
        let mut checked = 0;
        for v in (1..47).step_by(3) {
            for u in (1..63).step_by(3) {
                if map.is_valid(u, v) {
                    let n = map.normal(u, v);
                    assert!((n.norm() - 1.0).abs() < 1e-3);
                    // Normal faces the camera: n · view < 0 where view is
                    // the direction from camera to point.
                    let p = map.vertex(u, v);
                    assert!(n.dot(p) <= 1e-3, "normal not camera-facing at ({u},{v})");
                    checked += 1;
                }
            }
        }
        assert!(checked > 100);
    }

    #[test]
    fn wall_normals_match_scene_geometry() {
        // A flat wall straight ahead → normals ≈ -Z (toward camera).
        let scene = living_room();
        let pose = look_at(Vec3::ZERO, Vec3::new(0.0, 0.0, 2.9));
        let depth = render_depth(&scene, &k(), &pose);
        let map = VertexNormalMap::from_depth(&depth, &k());
        let n = map.normal(32, 10); // upper center: bare wall
        assert!(n.z < -0.9, "normal {n:?}");
    }

    #[test]
    fn half_sample_halves_and_smooths() {
        let depth = rendered();
        let half = half_sample(&depth, 0);
        assert_eq!(half.width, 32);
        assert_eq!(half.height, 24);
        assert!(half.valid_fraction() > 0.8);
        let smoother = half_sample(&depth, 2);
        assert_eq!(smoother.width, 32);
        // More iterations keep validity but change values.
        assert_ne!(half.data, smoother.data);
    }

    #[test]
    fn pyramid_levels_shrink_and_track_intrinsics() {
        let depth = rendered();
        let pyr = DepthPyramid::build(depth, k(), 3, &[10, 5, 4]);
        assert_eq!(pyr.levels.len(), 3);
        assert_eq!(pyr.levels[0].0.width, 64);
        assert_eq!(pyr.levels[1].0.width, 32);
        assert_eq!(pyr.levels[2].0.width, 16);
        assert_eq!(pyr.levels[2].1.width, 16);
        // Same 3D point projects consistently at all levels.
        let p = Vec3::new(0.2, 0.1, 2.0);
        let uv0 = pyr.levels[0].1.project(p).unwrap();
        let uv2 = pyr.levels[2].1.project(p).unwrap();
        assert!((uv0.x / 4.0 - uv2.x).abs() < 1.0);
    }

    #[test]
    fn invalid_pixels_produce_no_normals() {
        let mut depth = rendered();
        // Punch a hole.
        for v in 20..25 {
            for u in 30..35 {
                depth.data[v * 64 + u] = 0.0;
            }
        }
        let map = VertexNormalMap::from_depth(&depth, &k());
        assert!(!map.is_valid(32, 22));
        assert_eq!(map.vertex(32, 22), Vec3::ZERO);
    }
}
