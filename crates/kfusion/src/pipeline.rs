//! The full KinectFusion per-frame pipeline with per-kernel timing.

use crate::config::KFusionConfig;
use crate::maps::{DepthPyramid, VertexNormalMap};
use crate::preprocess::{bilateral_filter, downsample};
use crate::raycast::raycast;
use crate::tracking::{track, IcpResult, TrackingParams};
use crate::volume::TsdfVolume;
use icl_nuim_synth::Frame;
use slam_geometry::{CameraIntrinsics, SE3};
use hm_timing::Stopwatch;

/// Wall-clock seconds spent in each pipeline stage for one frame.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct KernelTimings {
    pub preprocess: f64,
    pub tracking: f64,
    pub integration: f64,
    pub raycast: f64,
}

impl KernelTimings {
    /// Total frame time in seconds.
    pub fn total(&self) -> f64 {
        self.preprocess + self.tracking + self.integration + self.raycast
    }
}

/// Per-frame outcome.
#[derive(Debug, Clone)]
pub struct FrameStats {
    /// Estimated camera-to-world pose after this frame.
    pub pose: SE3,
    /// Whether a tracking attempt was made this frame (`tracking_rate`).
    pub tracking_attempted: bool,
    /// Whether tracking converged (always false when not attempted).
    pub tracked: bool,
    /// Whether the depth map was fused (`integration_rate`).
    pub integrated: bool,
    /// Per-kernel wall-clock timings.
    pub timings: KernelTimings,
}

/// A running KinectFusion reconstruction.
///
/// Feed frames in order with [`KFusion::process`]; the estimated trajectory
/// accumulates in [`KFusion::trajectory`].
pub struct KFusion {
    config: KFusionConfig,
    /// Intrinsics of the raw sensor (before compute-size-ratio resizing).
    sensor_k: CameraIntrinsics,
    /// Intrinsics at processing resolution.
    proc_k: CameraIntrinsics,
    volume: TsdfVolume,
    pose: SE3,
    /// World-frame model maps from the last raycast, and the pose they were
    /// raycast from.
    model: Option<(VertexNormalMap, SE3)>,
    frame_count: usize,
    trajectory: Vec<SE3>,
    tracking_params: TrackingParams,
}

impl KFusion {
    /// Create a pipeline for a sensor with `sensor_k` intrinsics. The first
    /// processed frame initializes the map at `initial_pose`.
    ///
    /// # Panics
    /// If the configuration fails [`KFusionConfig::validate`].
    pub fn new(config: KFusionConfig, sensor_k: CameraIntrinsics, initial_pose: SE3) -> Self {
        // lint: allow(no-unaudited-panic): documented constructor contract; callers pre-validate via KFusionConfig::validate
        config.validate().expect("invalid KFusion configuration");
        let proc_k = sensor_k.downscaled(config.compute_size_ratio);
        let volume = TsdfVolume::new(config.volume_resolution, config.volume_size);
        let tracking_params = TrackingParams {
            icp_threshold: config.icp_threshold,
            iterations: config.pyramid_iterations,
            ..Default::default()
        };
        KFusion {
            config,
            sensor_k,
            proc_k,
            volume,
            pose: initial_pose,
            model: None,
            frame_count: 0,
            trajectory: Vec::new(),
            tracking_params,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &KFusionConfig {
        &self.config
    }

    /// Current pose estimate (camera-to-world).
    pub fn pose(&self) -> SE3 {
        self.pose
    }

    /// Estimated pose after each processed frame.
    pub fn trajectory(&self) -> &[SE3] {
        &self.trajectory
    }

    /// The TSDF volume (for inspection/meshing).
    pub fn volume(&self) -> &TsdfVolume {
        &self.volume
    }

    /// Process one RGB-D frame; returns what happened and how long each
    /// kernel took.
    pub fn process(&mut self, frame: &Frame) -> FrameStats {
        let mut timings = KernelTimings::default();
        let idx = self.frame_count;
        self.frame_count += 1;

        // ---- Preprocessing: resize + bilateral filter + pyramid. ----
        // KernelTimings feed objectives only under MeasurementMode::Timing
        // (DESIGN §9); the model path ignores them. The clock itself comes
        // from the audited `hm-timing` module.
        let t0 = Stopwatch::start();
        debug_assert_eq!(frame.depth.width, self.sensor_k.width);
        let resized = downsample(&frame.depth, self.config.compute_size_ratio);
        let filtered = bilateral_filter(&resized, 2, 1.5, 0.1);
        let pyramid = DepthPyramid::build(filtered, self.proc_k, 3, &[0, 1, 1]);
        timings.preprocess = t0.elapsed_secs();

        // ---- Tracking (every `tracking_rate` frames, never frame 0). ----
        let t1 = Stopwatch::start();
        let mut tracked = false;
        let tracking_attempted = idx > 0 && idx % self.config.tracking_rate == 0;
        if tracking_attempted {
            if let Some((model, model_pose)) = &self.model {
                let result: IcpResult = track(
                    &pyramid,
                    model,
                    &self.proc_k,
                    model_pose,
                    &self.pose,
                    &self.tracking_params,
                );
                tracked = result.tracked;
                if result.tracked {
                    self.pose = result.pose;
                }
            }
        }
        timings.tracking = t1.elapsed_secs();

        // ---- Integration (every `integration_rate` frames + frame 0). ----
        let t2 = Stopwatch::start();
        let integrated = idx == 0 || idx % self.config.integration_rate == 0;
        if integrated {
            self.volume.integrate(
                &pyramid.levels[0].0,
                &self.proc_k,
                &self.pose,
                self.config.mu,
            );
        }
        timings.integration = t2.elapsed_secs();

        // ---- Raycast the model for the next frame's tracking. ----
        let t3 = Stopwatch::start();
        let model = raycast(&self.volume, &self.proc_k, &self.pose, self.config.mu);
        self.model = Some((model, self.pose));
        timings.raycast = t3.elapsed_secs();

        self.trajectory.push(self.pose);
        FrameStats { pose: self.pose, tracking_attempted, tracked, integrated, timings }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icl_nuim_synth::{NoiseModel, SequenceConfig, SyntheticSequence, TrajectoryKind};

    fn sequence(n: usize) -> SyntheticSequence {
        SyntheticSequence::new(SequenceConfig {
            width: 64,
            height: 48,
            n_frames: n,
            trajectory: TrajectoryKind::LivingRoomLoop,
            noise: NoiseModel::none(),
            seed: 0,
        })
    }

    fn small_config() -> KFusionConfig {
        KFusionConfig {
            volume_resolution: 64,
            pyramid_iterations: [6, 4, 3],
            ..KFusionConfig::default()
        }
    }

    #[test]
    fn first_frame_bootstraps_map() {
        let seq = sequence(1);
        let mut kf = KFusion::new(small_config(), seq.intrinsics(), seq.gt_pose(0));
        let stats = kf.process(&seq.frame(0));
        assert!(!stats.tracking_attempted);
        assert!(stats.integrated);
        assert!(kf.volume().occupancy() > 0.0);
        assert_eq!(kf.trajectory().len(), 1);
    }

    #[test]
    fn tracks_slow_motion_sequence() {
        // A 200-frame trajectory keeps inter-frame motion small; we only
        // process the first 12 frames.
        let seq = sequence(200);
        let mut kf = KFusion::new(small_config(), seq.intrinsics(), seq.gt_pose(0));
        for i in 0..12 {
            kf.process(&seq.frame(i));
        }
        // Final pose close to ground truth.
        let err = kf.pose().translation_dist(&seq.gt_pose(11));
        assert!(err < 0.06, "drift {err}");
    }

    #[test]
    fn drift_stays_bounded_at_every_frame() {
        // Regression guard for the pyramid-smoothing conflation fixed in
        // this file: `pyramid_iterations` is the *ICP iteration budget*,
        // and passing it to `DepthPyramid::build` as per-level smoothing
        // pass counts over-blurred the coarse levels, which showed up not
        // as a single bad frame but as steadily accumulating drift
        // (~0.0655 m by frame 11 — `tracks_slow_motion_sequence` caught
        // the total). Checking every frame pins the failure mode itself:
        // the buggy pipeline stays under the final-drift bound for the
        // first few frames, so a per-frame ceiling plus an increment
        // ceiling fails fast and can't be masked by a lucky final frame.
        let seq = sequence(200);
        let mut kf = KFusion::new(small_config(), seq.intrinsics(), seq.gt_pose(0));
        let mut prev = 0.0f32;
        for i in 0..12 {
            kf.process(&seq.frame(i));
            let drift = kf.pose().translation_dist(&seq.gt_pose(i));
            // Measured healthy ceiling is ~0.0185 m (frame 11); the bug
            // blows through 0.03 m well before frame 11.
            assert!(drift < 0.03, "frame {i}: drift {drift}");
            assert!(
                drift - prev < 0.012,
                "frame {i}: drift grew by {} in one frame",
                drift - prev
            );
            prev = drift;
        }
    }

    #[test]
    fn tracking_rate_skips_localization() {
        let seq = sequence(6);
        let cfg = KFusionConfig { tracking_rate: 3, ..small_config() };
        let mut kf = KFusion::new(cfg, seq.intrinsics(), seq.gt_pose(0));
        let mut attempted = Vec::new();
        for f in seq.frames() {
            attempted.push(kf.process(f).tracking_attempted);
        }
        assert_eq!(attempted, vec![false, false, false, true, false, false]);
    }

    #[test]
    fn integration_rate_gates_fusion() {
        let seq = sequence(6);
        let cfg = KFusionConfig { integration_rate: 3, ..small_config() };
        let mut kf = KFusion::new(cfg, seq.intrinsics(), seq.gt_pose(0));
        let flags: Vec<bool> = seq.frames().map(|f| kf.process(f).integrated).collect();
        assert_eq!(flags, vec![true, false, false, true, false, false]);
    }

    #[test]
    fn timings_are_populated() {
        let seq = sequence(2);
        let mut kf = KFusion::new(small_config(), seq.intrinsics(), seq.gt_pose(0));
        let s0 = kf.process(&seq.frame(0));
        let s1 = kf.process(&seq.frame(1));
        assert!(s0.timings.total() > 0.0);
        assert!(s1.timings.tracking > 0.0); // frame 1 tracks
        assert!(s0.timings.integration > 0.0);
        assert!(s0.timings.raycast > 0.0);
    }

    #[test]
    fn compute_size_ratio_shrinks_processing() {
        let seq = sequence(1);
        let cfg = KFusionConfig { compute_size_ratio: 2, ..small_config() };
        let kf = KFusion::new(cfg, seq.intrinsics(), seq.gt_pose(0));
        assert_eq!(kf.proc_k.width, 32);
        assert_eq!(kf.proc_k.height, 24);
    }

    #[test]
    #[should_panic(expected = "invalid KFusion configuration")]
    fn invalid_config_panics() {
        let seq = sequence(1);
        let cfg = KFusionConfig { compute_size_ratio: 3, ..KFusionConfig::default() };
        KFusion::new(cfg, seq.intrinsics(), SE3::IDENTITY);
    }
}

