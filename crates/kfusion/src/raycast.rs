//! TSDF raycasting: extracting model vertex/normal maps.

use crate::maps::VertexNormalMap;
use crate::volume::TsdfVolume;
use rayon::prelude::*;
use slam_geometry::{CameraIntrinsics, Vec3, SE3};

/// Farthest ray march distance in meters.
const FAR: f32 = 8.0;

/// Raycast the TSDF `volume` from camera pose `pose` (camera-to-world),
/// producing per-pixel **world-frame** surface points and normals
/// (KinectFusion's *Raycast* kernel).
///
/// Rays march in steps of `0.75·µ` through observed space, detect a
/// positive→negative TSDF zero crossing, and refine the hit by linear
/// interpolation. Pixels whose rays leave the volume or never cross a
/// surface are invalid.
pub fn raycast(
    volume: &TsdfVolume,
    k: &CameraIntrinsics,
    pose: &SE3,
    mu: f32,
) -> VertexNormalMap {
    let w = k.width;
    let h = k.height;
    let mut vertices = vec![Vec3::ZERO; w * h];
    let mut normals = vec![Vec3::ZERO; w * h];
    let step = (0.75 * mu).max(volume.voxel_size() * 0.5);

    vertices
        .par_chunks_mut(w)
        .zip(normals.par_chunks_mut(w))
        .enumerate()
        .for_each(|(v, (vrow, nrow))| {
            for u in 0..w {
                let dir = pose.transform_dir(k.ray_dir(u as f32, v as f32)).normalized();
                let origin = pose.t;
                let mut t = 0.2f32; // sensor minimum range
                let mut prev: Option<(f32, f32)> = None; // (t, tsdf)
                while t < FAR {
                    let p = origin + dir * t;
                    match volume.interp(p) {
                        Some(tsdf) => {
                            if let Some((t_prev, tsdf_prev)) = prev {
                                if tsdf_prev > 0.0 && tsdf <= 0.0 {
                                    // Bisection refinement of the crossing:
                                    // far more accurate than one linear
                                    // interpolation when the TSDF is
                                    // nonlinear across coarse voxels.
                                    let (mut lo, mut hi) = (t_prev, t);
                                    for _ in 0..8 {
                                        let mid = 0.5 * (lo + hi);
                                        match volume.interp(origin + dir * mid) {
                                            Some(v) if v > 0.0 => lo = mid,
                                            Some(_) => hi = mid,
                                            None => break,
                                        }
                                    }
                                    let t_hit = 0.5 * (lo + hi);
                                    let hit = origin + dir * t_hit;
                                    if let Some(g) = volume.gradient(hit) {
                                        vrow[u] = hit;
                                        nrow[u] = g;
                                    }
                                    break;
                                }
                            }
                            prev = Some((t, tsdf));
                            // March by the TSDF's distance bound near the
                            // surface, faster through far free space.
                            t += if tsdf > 0.8 {
                                step * 2.0
                            } else {
                                (tsdf * mu * 0.8).max(step * 0.25)
                            };
                        }
                        None => {
                            prev = None;
                            t += step * 2.0;
                        }
                    }
                }
            }
        });
    VertexNormalMap { width: w, height: h, vertices, normals }
}

#[cfg(test)]
mod tests {
    use super::*;
    use icl_nuim_synth::{living_room, look_at, render_depth, DepthImage};

    fn cam() -> CameraIntrinsics {
        CameraIntrinsics::kinect_like(64, 48)
    }

    #[test]
    fn raycast_recovers_flat_wall() {
        // Integrate a wall at z = 2 then raycast from the same pose.
        let k = cam();
        let depth = DepthImage { width: 64, height: 48, data: vec![2.0; 64 * 48] };
        let mut vol = TsdfVolume::new(96, 6.0);
        let mu = 0.2;
        vol.integrate(&depth, &k, &SE3::IDENTITY, mu);
        let map = raycast(&vol, &k, &SE3::IDENTITY, mu);
        // Center pixel hits near z = 2 with a -Z normal.
        let p = map.vertex(32, 24);
        let n = map.normal(32, 24);
        assert!((p.z - 2.0).abs() < 0.05, "hit {p:?}");
        assert!(n.z < -0.8, "normal {n:?}");
    }

    #[test]
    fn raycast_depth_consistent_with_rendered_depth() {
        // Integrate a real scene view, raycast it back, compare depths.
        let scene = living_room();
        let k = cam();
        let pose = look_at(Vec3::new(0.0, -0.1, -0.3), Vec3::new(0.2, 0.4, 2.9));
        let depth = render_depth(&scene, &k, &pose);
        let mu = 0.15;
        let mut vol = TsdfVolume::new(128, 7.0);
        vol.integrate(&depth, &k, &pose, mu);
        let map = raycast(&vol, &k, &pose, mu);
        let world_to_cam = pose.inverse();
        let mut errs = Vec::new();
        for v in (4..44).step_by(4) {
            for u in (4..60).step_by(4) {
                let d = depth.at(u, v);
                if d > 0.0 && map.is_valid(u, v) {
                    let z = world_to_cam.transform_point(map.vertex(u, v)).z;
                    errs.push((z - d).abs());
                }
            }
        }
        assert!(errs.len() > 50, "too few hits: {}", errs.len());
        errs.sort_by(|a, b| a.total_cmp(b));
        let median = errs[errs.len() / 2];
        assert!(median < 0.05, "median raycast depth error {median}");
    }

    #[test]
    fn raycast_empty_volume_yields_invalid_map() {
        let vol = TsdfVolume::new(32, 4.0);
        let map = raycast(&vol, &cam(), &SE3::IDENTITY, 0.1);
        assert_eq!(map.valid_count(), 0);
    }

    #[test]
    fn raycast_from_shifted_pose_sees_the_same_surface() {
        let k = cam();
        let depth = DepthImage { width: 64, height: 48, data: vec![2.0; 64 * 48] };
        let mu = 0.2;
        let mut vol = TsdfVolume::new(96, 6.0);
        vol.integrate(&depth, &k, &SE3::IDENTITY, mu);
        // Move the camera slightly; the wall plane z≈2 must still be found.
        let pose2 = SE3::from_translation(Vec3::new(0.1, 0.05, -0.1));
        let map = raycast(&vol, &k, &pose2, mu);
        let p = map.vertex(32, 24);
        assert!(map.is_valid(32, 24));
        assert!((p.z - 2.0).abs() < 0.08, "hit {p:?}");
    }
}
