//! Property-based tests for the geometry kernel.

use proptest::prelude::*;
use slam_geometry::{CameraIntrinsics, Mat3, Quat, Vec3, SE3};

fn small_f() -> impl Strategy<Value = f32> {
    (-10.0f32..10.0).prop_map(|v| v)
}

fn vec3() -> impl Strategy<Value = Vec3> {
    (small_f(), small_f(), small_f()).prop_map(|(x, y, z)| Vec3::new(x, y, z))
}

fn unit_quat() -> impl Strategy<Value = Quat> {
    ((-1.0f32..1.0, -1.0f32..1.0, -1.0f32..1.0), -3.0f32..3.0).prop_filter_map(
        "nonzero axis",
        |((x, y, z), angle)| {
            let axis = Vec3::new(x, y, z);
            if axis.norm() < 1e-3 {
                None
            } else {
                Some(Quat::from_axis_angle(axis, angle))
            }
        },
    )
}

fn pose() -> impl Strategy<Value = SE3> {
    (unit_quat(), vec3()).prop_map(|(q, t)| SE3::from_quat_translation(q, t))
}

proptest! {
    #[test]
    fn cross_product_is_orthogonal(a in vec3(), b in vec3()) {
        let c = a.cross(b);
        let scale = (a.norm() * b.norm()).max(1.0);
        prop_assert!((c.dot(a) / scale).abs() < 1e-3);
        prop_assert!((c.dot(b) / scale).abs() < 1e-3);
    }

    #[test]
    fn dot_is_symmetric(a in vec3(), b in vec3()) {
        prop_assert!((a.dot(b) - b.dot(a)).abs() < 1e-4);
    }

    #[test]
    fn normalized_has_unit_norm(v in vec3()) {
        prop_assume!(v.norm() > 1e-3);
        prop_assert!((v.normalized().norm() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn rotation_preserves_norm(q in unit_quat(), v in vec3()) {
        let rotated = q.rotate(v);
        prop_assert!((rotated.norm() - v.norm()).abs() < 1e-3 * v.norm().max(1.0));
    }

    #[test]
    fn rotation_matrix_is_orthonormal(q in unit_quat()) {
        let m = q.to_mat3();
        prop_assert!((m.transpose() * m).dist(&Mat3::IDENTITY) < 1e-4);
        prop_assert!((m.det() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn quat_mat_quat_roundtrip(q in unit_quat()) {
        let back = Quat::from_mat3(&q.to_mat3());
        prop_assert!(q.to_mat3().dist(&back.to_mat3()) < 1e-3);
    }

    #[test]
    fn pose_inverse_roundtrip(p in pose(), v in vec3()) {
        let back = p.inverse().transform_point(p.transform_point(v));
        prop_assert!((back - v).norm() < 1e-2);
    }

    #[test]
    fn pose_composition_is_associative(a in pose(), b in pose(), c in pose(), v in vec3()) {
        let lhs = a.compose(&b).compose(&c).transform_point(v);
        let rhs = a.compose(&b.compose(&c)).transform_point(v);
        prop_assert!((lhs - rhs).norm() < 1e-2 * (1.0 + v.norm()));
    }

    #[test]
    fn exp_log_roundtrip_small_twists(
        vx in -0.5f32..0.5, vy in -0.5f32..0.5, vz in -0.5f32..0.5,
        wx in -1.0f32..1.0, wy in -1.0f32..1.0, wz in -1.0f32..1.0,
    ) {
        let xi = [vx, vy, vz, wx, wy, wz];
        let back = SE3::exp(xi).log();
        for i in 0..6 {
            prop_assert!((back[i] - xi[i]).abs() < 5e-3, "{:?} vs {:?}", xi, back);
        }
    }

    #[test]
    fn camera_project_backproject(u in 0.0f32..319.0, v in 0.0f32..239.0, d in 0.1f32..8.0) {
        let k = CameraIntrinsics::kinect_like(320, 240);
        let p = k.backproject(u, v, d);
        let uv = k.project(p).unwrap();
        prop_assert!((uv.x - u).abs() < 1e-2);
        prop_assert!((uv.y - v).abs() < 1e-2);
    }

    #[test]
    fn mat3_inverse_is_two_sided(q in unit_quat(), s in 0.5f32..2.0) {
        // Scaled rotations are always invertible.
        let m = q.to_mat3() * s;
        let inv = m.inverse().unwrap();
        prop_assert!((m * inv).dist(&Mat3::IDENTITY) < 1e-3);
        prop_assert!((inv * m).dist(&Mat3::IDENTITY) < 1e-3);
    }

    #[test]
    fn slerp_stays_unit(a in unit_quat(), b in unit_quat(), t in 0.0f32..1.0) {
        prop_assert!((a.slerp(b, t).norm() - 1.0).abs() < 1e-4);
    }
}
