//! Small dense linear solvers.
//!
//! Point-to-plane ICP reduces each iteration to a 6×6 symmetric
//! positive-semidefinite system `J^T J x = J^T r`. These solvers are written
//! for tiny fixed sizes (≤ 8) where a general BLAS would be overkill.

/// Solve `a · x = b` for symmetric positive-definite `a` (size `n×n`,
/// row-major, only used up to `n ≤ N`) via Cholesky decomposition.
///
/// Returns `None` when the matrix is not positive-definite (e.g. a
/// degenerate ICP system with too few correspondences).
pub fn cholesky_solve<const N: usize>(a: &[[f32; N]; N], b: &[f32; N]) -> Option<[f32; N]> {
    // Decompose a = L L^T.
    let mut l = [[0.0f32; N]; N];
    for i in 0..N {
        for j in 0..=i {
            let mut sum = a[i][j];
            for k in 0..j {
                sum -= l[i][k] * l[j][k];
            }
            if i == j {
                if sum <= 1e-12 {
                    return None;
                }
                l[i][j] = sum.sqrt();
            } else {
                l[i][j] = sum / l[j][j];
            }
        }
    }
    // Forward substitution: L y = b.
    let mut y = [0.0f32; N];
    for i in 0..N {
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[i][k] * y[k];
        }
        y[i] = sum / l[i][i];
    }
    // Back substitution: L^T x = y.
    let mut x = [0.0f32; N];
    for i in (0..N).rev() {
        let mut sum = y[i];
        for k in (i + 1)..N {
            sum -= l[k][i] * x[k];
        }
        x[i] = sum / l[i][i];
    }
    Some(x)
}

/// Solve `a · x = b` by Gaussian elimination with partial pivoting.
///
/// More robust than [`cholesky_solve`] for general (possibly indefinite)
/// matrices; used as a fallback when the ICP Hessian loses definiteness.
pub fn gauss_solve<const N: usize>(a: &[[f32; N]; N], b: &[f32; N]) -> Option<[f32; N]> {
    let mut m = [[0.0f32; N]; N];
    let mut rhs = *b;
    m.copy_from_slice(a);

    for col in 0..N {
        // Partial pivot.
        let mut pivot = col;
        for row in (col + 1)..N {
            if m[row][col].abs() > m[pivot][col].abs() {
                pivot = row;
            }
        }
        if m[pivot][col].abs() < 1e-12 {
            return None;
        }
        if pivot != col {
            m.swap(pivot, col);
            rhs.swap(pivot, col);
        }
        // Eliminate below.
        for row in (col + 1)..N {
            let f = m[row][col] / m[col][col];
            for c in col..N {
                m[row][c] -= f * m[col][c];
            }
            rhs[row] -= f * rhs[col];
        }
    }
    // Back substitution.
    let mut x = [0.0f32; N];
    for i in (0..N).rev() {
        let mut sum = rhs[i];
        for c in (i + 1)..N {
            sum -= m[i][c] * x[c];
        }
        x[i] = sum / m[i][i];
    }
    Some(x)
}

/// Accumulator for normal equations `J^T J x = J^T r` built one residual row
/// at a time, as produced by point-to-plane ICP (6 unknowns) or joint
/// geometric+photometric tracking.
#[derive(Debug, Clone)]
pub struct NormalEquations<const N: usize> {
    /// `J^T J`, symmetric.
    pub jtj: [[f32; N]; N],
    /// `J^T r`.
    pub jtr: [f32; N],
    /// Sum of squared residuals (for convergence checks).
    pub residual_sq: f64,
    /// Number of accumulated rows.
    pub count: usize,
}

impl<const N: usize> Default for NormalEquations<N> {
    fn default() -> Self {
        NormalEquations {
            jtj: [[0.0; N]; N],
            jtr: [0.0; N],
            residual_sq: 0.0,
            count: 0,
        }
    }
}

impl<const N: usize> NormalEquations<N> {
    /// Add one residual row with Jacobian `j`, residual `r` and weight `w`.
    pub fn add_row(&mut self, j: &[f32; N], r: f32, w: f32) {
        for a in 0..N {
            let wj = w * j[a];
            for b in a..N {
                self.jtj[a][b] += wj * j[b];
            }
            self.jtr[a] += wj * r;
        }
        self.residual_sq += (w * r * r) as f64;
        self.count += 1;
    }

    /// Merge another accumulator (for parallel reduction across image tiles).
    pub fn merge(&mut self, other: &NormalEquations<N>) {
        for a in 0..N {
            for b in a..N {
                self.jtj[a][b] += other.jtj[a][b];
            }
            self.jtr[a] += other.jtr[a];
        }
        self.residual_sq += other.residual_sq;
        self.count += other.count;
    }

    /// Solve for the update `x`, mirroring the upper triangle first.
    /// Adds `damping` (Levenberg-style) to the diagonal.
    pub fn solve(&self, damping: f32) -> Option<[f32; N]> {
        let mut full = self.jtj;
        for a in 0..N {
            for b in (a + 1)..N {
                full[b][a] = full[a][b];
            }
            full[a][a] += damping;
        }
        cholesky_solve(&full, &self.jtr).or_else(|| gauss_solve(&full, &self.jtr))
    }

    /// Root-mean-square residual over the accumulated rows.
    pub fn rms(&self) -> f32 {
        if self.count == 0 {
            0.0
        } else {
            (self.residual_sq / self.count as f64).sqrt() as f32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cholesky_solves_spd_system() {
        // a = L L^T with a known solution.
        let a = [[4.0, 2.0, 0.6], [2.0, 5.0, 1.0], [0.6, 1.0, 3.0]];
        let x_true = [1.0, -2.0, 0.5];
        let mut b = [0.0; 3];
        for i in 0..3 {
            for j in 0..3 {
                b[i] += a[i][j] * x_true[j];
            }
        }
        let x = cholesky_solve(&a, &b).expect("SPD");
        for i in 0..3 {
            assert!((x[i] - x_true[i]).abs() < 1e-4, "{x:?}");
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = [[1.0, 0.0], [0.0, -1.0]];
        assert!(cholesky_solve(&a, &[1.0, 1.0]).is_none());
    }

    #[test]
    fn gauss_solves_general_system() {
        let a = [[0.0, 2.0, 1.0], [1.0, -1.0, 0.0], [3.0, 0.0, -2.0]];
        let x_true = [2.0, -1.0, 3.0];
        let mut b = [0.0; 3];
        for i in 0..3 {
            for j in 0..3 {
                b[i] += a[i][j] * x_true[j];
            }
        }
        let x = gauss_solve(&a, &b).expect("non-singular");
        for i in 0..3 {
            assert!((x[i] - x_true[i]).abs() < 1e-4, "{x:?}");
        }
    }

    #[test]
    fn gauss_rejects_singular() {
        let a = [[1.0, 2.0], [2.0, 4.0]];
        assert!(gauss_solve(&a, &[1.0, 2.0]).is_none());
    }

    #[test]
    fn normal_equations_recover_least_squares_solution() {
        // Fit y = 2x + 1 from exact rows: residual r = y - (p0*x + p1),
        // with Jacobian d r / d p = [x, 1] convention flipped; we accumulate
        // J rows for parameters directly: j = [x, 1], r = y.
        let mut ne = NormalEquations::<2>::default();
        for i in 0..10 {
            let x = i as f32 * 0.5;
            let y = 2.0 * x + 1.0;
            ne.add_row(&[x, 1.0], y, 1.0);
        }
        let sol = ne.solve(0.0).expect("well-posed");
        assert!((sol[0] - 2.0).abs() < 1e-3, "{sol:?}");
        assert!((sol[1] - 1.0).abs() < 1e-3, "{sol:?}");
    }

    #[test]
    fn normal_equations_merge_equals_sequential() {
        let rows: Vec<([f32; 2], f32)> = (0..20)
            .map(|i| {
                let x = i as f32 * 0.1 - 1.0;
                ([x, 1.0], 3.0 * x - 0.5)
            })
            .collect();
        let mut seq = NormalEquations::<2>::default();
        for (j, r) in &rows {
            seq.add_row(j, *r, 1.0);
        }
        let mut a = NormalEquations::<2>::default();
        let mut b = NormalEquations::<2>::default();
        for (i, (j, r)) in rows.iter().enumerate() {
            if i % 2 == 0 {
                a.add_row(j, *r, 1.0);
            } else {
                b.add_row(j, *r, 1.0);
            }
        }
        a.merge(&b);
        let xs = seq.solve(0.0).unwrap();
        let xm = a.solve(0.0).unwrap();
        for i in 0..2 {
            assert!((xs[i] - xm[i]).abs() < 1e-4);
        }
        assert_eq!(seq.count, a.count);
        assert!((seq.residual_sq - a.residual_sq).abs() < 1e-6);
    }

    #[test]
    fn degenerate_system_returns_none() {
        // Only one distinct row: rank-1 JTJ cannot determine 2 parameters.
        let mut ne = NormalEquations::<2>::default();
        for _ in 0..5 {
            ne.add_row(&[1.0, 0.0], 1.0, 1.0);
        }
        assert!(ne.solve(0.0).is_none());
        // With damping it becomes solvable.
        assert!(ne.solve(1e-3).is_some());
    }

    #[test]
    fn weights_scale_influence() {
        // Two contradictory observations; heavier weight should win.
        let mut ne = NormalEquations::<1>::default();
        ne.add_row(&[1.0], 0.0, 1.0);
        ne.add_row(&[1.0], 10.0, 9.0);
        let x = ne.solve(0.0).unwrap();
        assert!((x[0] - 9.0).abs() < 1e-4); // weighted mean
    }

    #[test]
    fn rms_tracks_residuals() {
        let mut ne = NormalEquations::<1>::default();
        ne.add_row(&[1.0], 3.0, 1.0);
        ne.add_row(&[1.0], 4.0, 1.0);
        let expected = ((9.0f64 + 16.0) / 2.0).sqrt() as f32;
        assert!((ne.rms() - expected).abs() < 1e-5);
        assert_eq!(NormalEquations::<1>::default().rms(), 0.0);
    }
}
