//! Unit quaternions for 3D rotations.

use crate::mat::Mat3;
use crate::vec::Vec3;

/// A quaternion `w + xi + yj + zk`. Rotation quaternions are kept unit-norm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quat {
    pub w: f32,
    pub x: f32,
    pub y: f32,
    pub z: f32,
}

impl Default for Quat {
    fn default() -> Self {
        Quat::IDENTITY
    }
}

impl Quat {
    pub const IDENTITY: Quat = Quat { w: 1.0, x: 0.0, y: 0.0, z: 0.0 };

    #[inline]
    pub const fn new(w: f32, x: f32, y: f32, z: f32) -> Self {
        Quat { w, x, y, z }
    }

    /// Rotation of `angle` radians about (not necessarily unit) `axis`.
    pub fn from_axis_angle(axis: Vec3, angle: f32) -> Quat {
        let a = axis.normalized();
        let (s, c) = (angle * 0.5).sin_cos();
        Quat::new(c, a.x * s, a.y * s, a.z * s)
    }

    /// Quaternion norm.
    #[inline]
    pub fn norm(self) -> f32 {
        (self.w * self.w + self.x * self.x + self.y * self.y + self.z * self.z).sqrt()
    }

    /// Normalize to a unit quaternion; identity for a degenerate input.
    pub fn normalized(self) -> Quat {
        let n = self.norm();
        if n < crate::EPS {
            Quat::IDENTITY
        } else {
            Quat::new(self.w / n, self.x / n, self.y / n, self.z / n)
        }
    }

    /// Conjugate; the inverse for unit quaternions.
    #[inline]
    pub fn conjugate(self) -> Quat {
        Quat::new(self.w, -self.x, -self.y, -self.z)
    }

    /// Hamilton product.
    pub fn mul(self, o: Quat) -> Quat {
        Quat::new(
            self.w * o.w - self.x * o.x - self.y * o.y - self.z * o.z,
            self.w * o.x + self.x * o.w + self.y * o.z - self.z * o.y,
            self.w * o.y - self.x * o.z + self.y * o.w + self.z * o.x,
            self.w * o.z + self.x * o.y - self.y * o.x + self.z * o.w,
        )
    }

    /// Rotate a vector.
    pub fn rotate(self, v: Vec3) -> Vec3 {
        // v' = v + 2 q_v × (q_v × v + w v)
        let qv = Vec3::new(self.x, self.y, self.z);
        let t = qv.cross(v) * 2.0;
        v + t * self.w + qv.cross(t)
    }

    /// Convert to a rotation matrix.
    pub fn to_mat3(self) -> Mat3 {
        let q = self.normalized();
        let (w, x, y, z) = (q.w, q.x, q.y, q.z);
        Mat3::from_rows(
            [
                1.0 - 2.0 * (y * y + z * z),
                2.0 * (x * y - w * z),
                2.0 * (x * z + w * y),
            ],
            [
                2.0 * (x * y + w * z),
                1.0 - 2.0 * (x * x + z * z),
                2.0 * (y * z - w * x),
            ],
            [
                2.0 * (x * z - w * y),
                2.0 * (y * z + w * x),
                1.0 - 2.0 * (x * x + y * y),
            ],
        )
    }

    /// Convert a rotation matrix to a quaternion (Shepperd's method).
    pub fn from_mat3(m: &Mat3) -> Quat {
        let tr = m.trace();
        let q = if tr > 0.0 {
            let s = (tr + 1.0).sqrt() * 2.0;
            Quat::new(
                0.25 * s,
                (m.m[2][1] - m.m[1][2]) / s,
                (m.m[0][2] - m.m[2][0]) / s,
                (m.m[1][0] - m.m[0][1]) / s,
            )
        } else if m.m[0][0] > m.m[1][1] && m.m[0][0] > m.m[2][2] {
            let s = (1.0 + m.m[0][0] - m.m[1][1] - m.m[2][2]).sqrt() * 2.0;
            Quat::new(
                (m.m[2][1] - m.m[1][2]) / s,
                0.25 * s,
                (m.m[0][1] + m.m[1][0]) / s,
                (m.m[0][2] + m.m[2][0]) / s,
            )
        } else if m.m[1][1] > m.m[2][2] {
            let s = (1.0 + m.m[1][1] - m.m[0][0] - m.m[2][2]).sqrt() * 2.0;
            Quat::new(
                (m.m[0][2] - m.m[2][0]) / s,
                (m.m[0][1] + m.m[1][0]) / s,
                0.25 * s,
                (m.m[1][2] + m.m[2][1]) / s,
            )
        } else {
            let s = (1.0 + m.m[2][2] - m.m[0][0] - m.m[1][1]).sqrt() * 2.0;
            Quat::new(
                (m.m[1][0] - m.m[0][1]) / s,
                (m.m[0][2] + m.m[2][0]) / s,
                (m.m[1][2] + m.m[2][1]) / s,
                0.25 * s,
            )
        };
        q.normalized()
    }

    /// Spherical linear interpolation between unit quaternions.
    pub fn slerp(self, mut other: Quat, t: f32) -> Quat {
        let mut cos = self.w * other.w + self.x * other.x + self.y * other.y + self.z * other.z;
        // Take the short arc.
        if cos < 0.0 {
            cos = -cos;
            other = Quat::new(-other.w, -other.x, -other.y, -other.z);
        }
        if cos > 0.9995 {
            // Nearly parallel: fall back to nlerp.
            return Quat::new(
                self.w + (other.w - self.w) * t,
                self.x + (other.x - self.x) * t,
                self.y + (other.y - self.y) * t,
                self.z + (other.z - self.z) * t,
            )
            .normalized();
        }
        let theta = cos.clamp(-1.0, 1.0).acos();
        let sin = theta.sin();
        let a = ((1.0 - t) * theta).sin() / sin;
        let b = (t * theta).sin() / sin;
        Quat::new(
            a * self.w + b * other.w,
            a * self.x + b * other.x,
            a * self.y + b * other.y,
            a * self.z + b * other.z,
        )
        .normalized()
    }

    /// Rotation angle in radians (in `[0, π]`).
    pub fn angle(self) -> f32 {
        let q = self.normalized();
        2.0 * q.w.abs().clamp(-1.0, 1.0).acos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f32::consts::{FRAC_PI_2, PI};

    #[test]
    fn identity_rotation_is_noop() {
        let v = Vec3::new(1.0, 2.0, 3.0);
        assert!((Quat::IDENTITY.rotate(v) - v).norm() < 1e-6);
    }

    #[test]
    fn quarter_turn_about_z() {
        let q = Quat::from_axis_angle(Vec3::Z, FRAC_PI_2);
        let r = q.rotate(Vec3::X);
        assert!((r - Vec3::Y).norm() < 1e-5, "{r:?}");
    }

    #[test]
    fn rotation_preserves_length() {
        let q = Quat::from_axis_angle(Vec3::new(1.0, 2.0, -0.5), 1.234);
        let v = Vec3::new(-3.0, 0.25, 4.0);
        assert!((q.rotate(v).norm() - v.norm()).abs() < 1e-4);
    }

    #[test]
    fn quat_matrix_agreement() {
        let q = Quat::from_axis_angle(Vec3::new(0.2, -0.8, 0.4), 0.9);
        let m = q.to_mat3();
        let v = Vec3::new(1.0, -1.0, 0.5);
        assert!((q.rotate(v) - m * v).norm() < 1e-5);
    }

    #[test]
    fn mat3_quat_roundtrip() {
        for (axis, angle) in [
            (Vec3::X, 0.3),
            (Vec3::Y, 2.5),
            (Vec3::Z, -1.0),
            (Vec3::new(1.0, 1.0, 1.0), PI * 0.9),
            (Vec3::new(-0.3, 0.8, 0.1), 3.0),
        ] {
            let q = Quat::from_axis_angle(axis, angle);
            let q2 = Quat::from_mat3(&q.to_mat3());
            // q and -q are the same rotation; compare matrices.
            assert!(q.to_mat3().dist(&q2.to_mat3()) < 1e-4);
        }
    }

    #[test]
    fn conjugate_inverts_rotation() {
        let q = Quat::from_axis_angle(Vec3::new(0.5, 0.1, 0.9), 1.7);
        let v = Vec3::new(2.0, -1.0, 0.3);
        let back = q.conjugate().rotate(q.rotate(v));
        assert!((back - v).norm() < 1e-5);
    }

    #[test]
    fn composition_matches_matrix_product() {
        let a = Quat::from_axis_angle(Vec3::X, 0.4);
        let b = Quat::from_axis_angle(Vec3::Y, -0.7);
        let ab = a.mul(b);
        let v = Vec3::new(0.1, 0.2, 0.3);
        let via_quat = ab.rotate(v);
        let via_seq = a.rotate(b.rotate(v));
        assert!((via_quat - via_seq).norm() < 1e-5);
    }

    #[test]
    fn slerp_endpoints_and_halfway() {
        let a = Quat::IDENTITY;
        let b = Quat::from_axis_angle(Vec3::Z, FRAC_PI_2);
        assert!(a.slerp(b, 0.0).to_mat3().dist(&a.to_mat3()) < 1e-5);
        assert!(a.slerp(b, 1.0).to_mat3().dist(&b.to_mat3()) < 1e-5);
        let mid = a.slerp(b, 0.5);
        let expected = Quat::from_axis_angle(Vec3::Z, FRAC_PI_2 / 2.0);
        assert!(mid.to_mat3().dist(&expected.to_mat3()) < 1e-4);
    }

    #[test]
    fn angle_extraction() {
        let q = Quat::from_axis_angle(Vec3::Y, 0.8);
        assert!((q.angle() - 0.8).abs() < 1e-4);
        assert!(Quat::IDENTITY.angle() < 1e-4);
    }
}
