//! Minimal 3D geometry kernel for dense SLAM.
//!
//! This crate provides the small, allocation-free linear-algebra core shared
//! by the `kfusion` and `elasticfusion` pipelines:
//!
//! * [`Vec2`], [`Vec3`], [`Vec4`] — fixed-size `f32` vectors,
//! * [`Mat3`], [`Mat4`] — row-major square matrices,
//! * [`Quat`] — unit quaternions for 3D rotations,
//! * [`SE3`] — rigid-body transforms with the `se(3)` exponential/logarithm
//!   maps used by iterative-closest-point (ICP) pose updates,
//! * [`CameraIntrinsics`] — pinhole projection/back-projection,
//! * [`solve`] — small dense solvers (Cholesky, Gauss) for the 6×6 normal
//!   equations produced by point-to-plane ICP.
//!
//! Everything is `Copy`, deterministic, and has no external dependencies so
//! the SLAM kernels built on top stay cache-friendly and trivially
//! parallelizable.

pub mod camera;
pub mod mat;
pub mod quat;
pub mod se3;
pub mod solve;
pub mod vec;

pub use camera::CameraIntrinsics;
pub use mat::{Mat3, Mat4};
pub use quat::Quat;
pub use se3::SE3;
pub use vec::{Vec2, Vec3, Vec4};

/// Numerical tolerance used across the crate for "is this effectively zero"
/// checks (degenerate normals, singular pivots, ...).
pub const EPS: f32 = 1e-9;
