//! Row-major 3×3 and 4×4 matrices.

use crate::vec::{Vec3, Vec4};
use std::ops::{Add, Mul, Sub};

/// A row-major 3×3 matrix, used for rotations and intrinsics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat3 {
    /// `m[row][col]`
    pub m: [[f32; 3]; 3],
}

/// A row-major 4×4 matrix, used for homogeneous rigid transforms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Mat4 {
    /// `m[row][col]`
    pub m: [[f32; 4]; 4],
}

impl Default for Mat3 {
    fn default() -> Self {
        Mat3::IDENTITY
    }
}

impl Default for Mat4 {
    fn default() -> Self {
        Mat4::IDENTITY
    }
}

impl Mat3 {
    pub const ZERO: Mat3 = Mat3 { m: [[0.0; 3]; 3] };
    pub const IDENTITY: Mat3 = Mat3 {
        m: [[1.0, 0.0, 0.0], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]],
    };

    /// Build from three rows.
    #[inline]
    pub const fn from_rows(r0: [f32; 3], r1: [f32; 3], r2: [f32; 3]) -> Self {
        Mat3 { m: [r0, r1, r2] }
    }

    /// Build from three column vectors.
    #[inline]
    pub fn from_cols(c0: Vec3, c1: Vec3, c2: Vec3) -> Self {
        Mat3::from_rows([c0.x, c1.x, c2.x], [c0.y, c1.y, c2.y], [c0.z, c1.z, c2.z])
    }

    /// Diagonal matrix.
    #[inline]
    pub fn from_diagonal(d: Vec3) -> Self {
        let mut m = Mat3::ZERO;
        m.m[0][0] = d.x;
        m.m[1][1] = d.y;
        m.m[2][2] = d.z;
        m
    }

    /// Skew-symmetric "hat" matrix such that `hat(w) * v == w.cross(v)`.
    #[inline]
    pub fn hat(w: Vec3) -> Self {
        Mat3::from_rows([0.0, -w.z, w.y], [w.z, 0.0, -w.x], [-w.y, w.x, 0.0])
    }

    /// Row `r` as a vector.
    #[inline]
    pub fn row(&self, r: usize) -> Vec3 {
        Vec3::new(self.m[r][0], self.m[r][1], self.m[r][2])
    }

    /// Column `c` as a vector.
    #[inline]
    pub fn col(&self, c: usize) -> Vec3 {
        Vec3::new(self.m[0][c], self.m[1][c], self.m[2][c])
    }

    /// Matrix transpose.
    #[inline]
    pub fn transpose(&self) -> Mat3 {
        let mut t = Mat3::ZERO;
        for r in 0..3 {
            for c in 0..3 {
                t.m[c][r] = self.m[r][c];
            }
        }
        t
    }

    /// Determinant.
    pub fn det(&self) -> f32 {
        let m = &self.m;
        m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
            - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
            + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
    }

    /// Matrix trace.
    #[inline]
    pub fn trace(&self) -> f32 {
        self.m[0][0] + self.m[1][1] + self.m[2][2]
    }

    /// Inverse via the adjugate; `None` when (near-)singular.
    pub fn inverse(&self) -> Option<Mat3> {
        let d = self.det();
        if d.abs() < crate::EPS {
            return None;
        }
        let m = &self.m;
        let inv_d = 1.0 / d;
        let mut r = Mat3::ZERO;
        r.m[0][0] = (m[1][1] * m[2][2] - m[1][2] * m[2][1]) * inv_d;
        r.m[0][1] = (m[0][2] * m[2][1] - m[0][1] * m[2][2]) * inv_d;
        r.m[0][2] = (m[0][1] * m[1][2] - m[0][2] * m[1][1]) * inv_d;
        r.m[1][0] = (m[1][2] * m[2][0] - m[1][0] * m[2][2]) * inv_d;
        r.m[1][1] = (m[0][0] * m[2][2] - m[0][2] * m[2][0]) * inv_d;
        r.m[1][2] = (m[0][2] * m[1][0] - m[0][0] * m[1][2]) * inv_d;
        r.m[2][0] = (m[1][0] * m[2][1] - m[1][1] * m[2][0]) * inv_d;
        r.m[2][1] = (m[0][1] * m[2][0] - m[0][0] * m[2][1]) * inv_d;
        r.m[2][2] = (m[0][0] * m[1][1] - m[0][1] * m[1][0]) * inv_d;
        Some(r)
    }

    /// Re-orthonormalize a near-rotation matrix with one Gram–Schmidt pass,
    /// guarding against drift accumulated over many ICP updates.
    pub fn orthonormalized(&self) -> Mat3 {
        let x = self.col(0).normalized();
        let mut y = self.col(1);
        y = (y - x * x.dot(y)).normalized();
        let z = x.cross(y);
        Mat3::from_cols(x, y, z)
    }

    /// Frobenius norm of `self - other`, handy in tests.
    pub fn dist(&self, other: &Mat3) -> f32 {
        let mut s = 0.0;
        for r in 0..3 {
            for c in 0..3 {
                let d = self.m[r][c] - other.m[r][c];
                s += d * d;
            }
        }
        s.sqrt()
    }
}

impl Mul<Vec3> for Mat3 {
    type Output = Vec3;
    #[inline]
    fn mul(self, v: Vec3) -> Vec3 {
        Vec3::new(self.row(0).dot(v), self.row(1).dot(v), self.row(2).dot(v))
    }
}

impl Mul for Mat3 {
    type Output = Mat3;
    fn mul(self, o: Mat3) -> Mat3 {
        let mut r = Mat3::ZERO;
        for i in 0..3 {
            for j in 0..3 {
                let mut s = 0.0;
                for k in 0..3 {
                    s += self.m[i][k] * o.m[k][j];
                }
                r.m[i][j] = s;
            }
        }
        r
    }
}

impl Add for Mat3 {
    type Output = Mat3;
    fn add(self, o: Mat3) -> Mat3 {
        let mut r = Mat3::ZERO;
        for i in 0..3 {
            for j in 0..3 {
                r.m[i][j] = self.m[i][j] + o.m[i][j];
            }
        }
        r
    }
}

impl Sub for Mat3 {
    type Output = Mat3;
    fn sub(self, o: Mat3) -> Mat3 {
        let mut r = Mat3::ZERO;
        for i in 0..3 {
            for j in 0..3 {
                r.m[i][j] = self.m[i][j] - o.m[i][j];
            }
        }
        r
    }
}

impl Mul<f32> for Mat3 {
    type Output = Mat3;
    fn mul(self, s: f32) -> Mat3 {
        let mut r = self;
        for i in 0..3 {
            for j in 0..3 {
                r.m[i][j] *= s;
            }
        }
        r
    }
}

impl Mat4 {
    pub const ZERO: Mat4 = Mat4 { m: [[0.0; 4]; 4] };
    pub const IDENTITY: Mat4 = Mat4 {
        m: [
            [1.0, 0.0, 0.0, 0.0],
            [0.0, 1.0, 0.0, 0.0],
            [0.0, 0.0, 1.0, 0.0],
            [0.0, 0.0, 0.0, 1.0],
        ],
    };

    /// Homogeneous transform from a rotation block and translation column.
    pub fn from_rotation_translation(r: Mat3, t: Vec3) -> Mat4 {
        let mut m = Mat4::IDENTITY;
        for i in 0..3 {
            for j in 0..3 {
                m.m[i][j] = r.m[i][j];
            }
        }
        m.m[0][3] = t.x;
        m.m[1][3] = t.y;
        m.m[2][3] = t.z;
        m
    }

    /// Upper-left 3×3 block.
    pub fn rotation(&self) -> Mat3 {
        let mut r = Mat3::ZERO;
        for i in 0..3 {
            for j in 0..3 {
                r.m[i][j] = self.m[i][j];
            }
        }
        r
    }

    /// Last column (translation part).
    #[inline]
    pub fn translation(&self) -> Vec3 {
        Vec3::new(self.m[0][3], self.m[1][3], self.m[2][3])
    }

    /// Apply to a homogeneous vector.
    pub fn mul_vec4(&self, v: Vec4) -> Vec4 {
        let m = &self.m;
        Vec4::new(
            m[0][0] * v.x + m[0][1] * v.y + m[0][2] * v.z + m[0][3] * v.w,
            m[1][0] * v.x + m[1][1] * v.y + m[1][2] * v.z + m[1][3] * v.w,
            m[2][0] * v.x + m[2][1] * v.y + m[2][2] * v.z + m[2][3] * v.w,
            m[3][0] * v.x + m[3][1] * v.y + m[3][2] * v.z + m[3][3] * v.w,
        )
    }

    /// Transform a point (w = 1, translation applied).
    #[inline]
    pub fn transform_point(&self, p: Vec3) -> Vec3 {
        self.mul_vec4(p.to_homogeneous_point()).xyz()
    }

    /// Transform a direction (w = 0, rotation only).
    #[inline]
    pub fn transform_dir(&self, d: Vec3) -> Vec3 {
        self.mul_vec4(d.to_homogeneous_dir()).xyz()
    }
}

impl Mul for Mat4 {
    type Output = Mat4;
    fn mul(self, o: Mat4) -> Mat4 {
        let mut r = Mat4::ZERO;
        for i in 0..4 {
            for j in 0..4 {
                let mut s = 0.0;
                for k in 0..4 {
                    s += self.m[i][k] * o.m[k][j];
                }
                r.m[i][j] = s;
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_multiplicative_unit() {
        let a = Mat3::from_rows([1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 10.0]);
        assert_eq!(a * Mat3::IDENTITY, a);
        assert_eq!(Mat3::IDENTITY * a, a);
    }

    #[test]
    fn mat3_inverse_roundtrip() {
        let a = Mat3::from_rows([2.0, 0.0, 1.0], [1.0, 3.0, 0.0], [0.0, 1.0, 4.0]);
        let inv = a.inverse().expect("invertible");
        assert!((a * inv).dist(&Mat3::IDENTITY) < 1e-5);
        assert!((inv * a).dist(&Mat3::IDENTITY) < 1e-5);
    }

    #[test]
    fn singular_matrix_has_no_inverse() {
        let a = Mat3::from_rows([1.0, 2.0, 3.0], [2.0, 4.0, 6.0], [0.0, 1.0, 1.0]);
        assert!(a.inverse().is_none());
    }

    #[test]
    fn hat_matrix_matches_cross_product() {
        let w = Vec3::new(0.3, -1.2, 2.0);
        let v = Vec3::new(1.0, 0.5, -0.7);
        let hv = Mat3::hat(w) * v;
        let cv = w.cross(v);
        assert!((hv - cv).norm() < 1e-6);
    }

    #[test]
    fn transpose_involution() {
        let a = Mat3::from_rows([1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 9.0]);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn det_of_diagonal() {
        let d = Mat3::from_diagonal(Vec3::new(2.0, 3.0, 4.0));
        assert!((d.det() - 24.0).abs() < 1e-6);
        assert!((d.trace() - 9.0).abs() < 1e-6);
    }

    #[test]
    fn orthonormalized_gives_rotation() {
        // Perturb a rotation and check orthonormalization restores R^T R = I
        // and det = +1.
        let mut r = Mat3::IDENTITY;
        r.m[0][1] += 0.01;
        r.m[2][0] -= 0.02;
        let q = r.orthonormalized();
        assert!((q.transpose() * q).dist(&Mat3::IDENTITY) < 1e-5);
        assert!((q.det() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn mat4_point_vs_dir_transform() {
        let t = Mat4::from_rotation_translation(Mat3::IDENTITY, Vec3::new(1.0, 2.0, 3.0));
        let p = Vec3::new(1.0, 1.0, 1.0);
        assert_eq!(t.transform_point(p), Vec3::new(2.0, 3.0, 4.0));
        assert_eq!(t.transform_dir(p), p); // directions ignore translation
    }

    #[test]
    fn mat4_composition_matches_sequential_application() {
        let a = Mat4::from_rotation_translation(Mat3::hat(Vec3::X) + Mat3::IDENTITY, Vec3::X);
        let b = Mat4::from_rotation_translation(Mat3::IDENTITY, Vec3::new(0.0, 1.0, 0.0));
        let p = Vec3::new(0.5, -0.5, 2.0);
        let via_product = (a * b).transform_point(p);
        let sequential = a.transform_point(b.transform_point(p));
        assert!((via_product - sequential).norm() < 1e-5);
    }

    #[test]
    fn rows_and_cols_agree_with_storage() {
        let a = Mat3::from_rows([1.0, 2.0, 3.0], [4.0, 5.0, 6.0], [7.0, 8.0, 9.0]);
        assert_eq!(a.row(1), Vec3::new(4.0, 5.0, 6.0));
        assert_eq!(a.col(2), Vec3::new(3.0, 6.0, 9.0));
        let b = Mat3::from_cols(a.col(0), a.col(1), a.col(2));
        assert_eq!(a, b);
    }
}
