//! Rigid-body transforms (the special Euclidean group SE(3)).

use crate::mat::{Mat3, Mat4};
use crate::quat::Quat;
use crate::vec::Vec3;

/// A rigid-body transform: rotation `r` followed by translation `t`
/// (`x ↦ r·x + t`).
///
/// Used throughout the SLAM pipelines for camera poses (camera-to-world) and
/// for the incremental pose updates produced by ICP. The [`SE3::exp`] /
/// [`SE3::log`] maps convert between a 6-vector twist `[v, w]` (translational
/// then rotational part) and the group element, which is how ICP applies the
/// solution of its normal equations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SE3 {
    pub r: Mat3,
    pub t: Vec3,
}

impl Default for SE3 {
    fn default() -> Self {
        SE3::IDENTITY
    }
}

impl SE3 {
    pub const IDENTITY: SE3 = SE3 { r: Mat3::IDENTITY, t: Vec3::ZERO };

    /// From rotation matrix and translation.
    #[inline]
    pub const fn new(r: Mat3, t: Vec3) -> Self {
        SE3 { r, t }
    }

    /// Pure translation.
    #[inline]
    pub fn from_translation(t: Vec3) -> Self {
        SE3::new(Mat3::IDENTITY, t)
    }

    /// From a unit quaternion and translation.
    #[inline]
    pub fn from_quat_translation(q: Quat, t: Vec3) -> Self {
        SE3::new(q.to_mat3(), t)
    }

    /// Apply to a point.
    #[inline]
    pub fn transform_point(&self, p: Vec3) -> Vec3 {
        self.r * p + self.t
    }

    /// Apply the rotation only (for normals/directions).
    #[inline]
    pub fn transform_dir(&self, d: Vec3) -> Vec3 {
        self.r * d
    }

    /// Group composition: `(self ∘ other)(x) = self(other(x))`.
    #[inline]
    pub fn compose(&self, other: &SE3) -> SE3 {
        SE3::new(self.r * other.r, self.r * other.t + self.t)
    }

    /// Group inverse.
    pub fn inverse(&self) -> SE3 {
        let rt = self.r.transpose();
        SE3::new(rt, -(rt * self.t))
    }

    /// Exponential map from a twist `ξ = [v, w]` (translational velocity `v`,
    /// rotational velocity `w`, both in ℝ³) to a rigid transform.
    ///
    /// Uses the closed-form Rodrigues formulas; falls back to the Taylor
    /// expansion for small angles to stay numerically stable.
    pub fn exp(xi: [f32; 6]) -> SE3 {
        let v = Vec3::new(xi[0], xi[1], xi[2]);
        let w = Vec3::new(xi[3], xi[4], xi[5]);
        let theta = w.norm();
        let wx = Mat3::hat(w);
        let wx2 = wx * wx;
        let (r, vmat) = if theta < 1e-5 {
            // R ≈ I + ŵ + ŵ²/2, V ≈ I + ŵ/2 + ŵ²/6
            (
                Mat3::IDENTITY + wx + wx2 * 0.5,
                Mat3::IDENTITY + wx * 0.5 + wx2 * (1.0 / 6.0),
            )
        } else {
            let a = theta.sin() / theta;
            let b = (1.0 - theta.cos()) / (theta * theta);
            let c = (1.0 - a) / (theta * theta);
            (
                Mat3::IDENTITY + wx * a + wx2 * b,
                Mat3::IDENTITY + wx * b + wx2 * c,
            )
        };
        SE3::new(r.orthonormalized(), vmat * v)
    }

    /// Logarithm map: inverse of [`SE3::exp`]. Returns the twist `[v, w]`.
    pub fn log(&self) -> [f32; 6] {
        let q = Quat::from_mat3(&self.r);
        let angle = q.angle();
        let w = if angle < 1e-5 {
            // so(3) log ≈ vee(R - R^T)/2 for small rotations
            let d = self.r - self.r.transpose();
            Vec3::new(d.m[2][1], d.m[0][2], d.m[1][0]) * 0.5
        } else {
            let axis = Vec3::new(q.x, q.y, q.z).normalized();
            let sign = if q.w >= 0.0 { 1.0 } else { -1.0 };
            axis * (angle * sign)
        };
        let theta = w.norm();
        let wx = Mat3::hat(w);
        let wx2 = wx * wx;
        let v_inv = if theta < 1e-5 {
            Mat3::IDENTITY - wx * 0.5 + wx2 * (1.0 / 12.0)
        } else {
            // V^{-1} = I - ŵ/2 + (1/θ² - cot(θ/2)/(2θ)) ŵ²
            let half = theta * 0.5;
            let cot_half = half.cos() / half.sin();
            let coeff = 1.0 / (theta * theta) - cot_half / (2.0 * theta);
            Mat3::IDENTITY - wx * 0.5 + wx2 * coeff
        };
        let v = v_inv * self.t;
        [v.x, v.y, v.z, w.x, w.y, w.z]
    }

    /// Homogeneous 4×4 matrix form.
    pub fn to_mat4(&self) -> Mat4 {
        Mat4::from_rotation_translation(self.r, self.t)
    }

    /// Rotation as a unit quaternion.
    pub fn rotation_quat(&self) -> Quat {
        Quat::from_mat3(&self.r)
    }

    /// Translational distance between two poses.
    pub fn translation_dist(&self, other: &SE3) -> f32 {
        (self.t - other.t).norm()
    }

    /// Rotational distance (angle of the relative rotation) in radians.
    pub fn rotation_dist(&self, other: &SE3) -> f32 {
        Quat::from_mat3(&(self.r.transpose() * other.r)).angle()
    }

    /// Re-orthonormalize the rotation block (drift control after many
    /// incremental compositions).
    pub fn normalized(&self) -> SE3 {
        SE3::new(self.r.orthonormalized(), self.t)
    }

    /// Interpolate between two poses (slerp on rotation, lerp on
    /// translation); `t = 0` gives `self`.
    pub fn interpolate(&self, other: &SE3, t: f32) -> SE3 {
        let q = self.rotation_quat().slerp(other.rotation_quat(), t);
        SE3::from_quat_translation(q, self.t.lerp(other.t, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f32::consts::FRAC_PI_2;

    fn assert_pose_close(a: &SE3, b: &SE3, tol: f32) {
        assert!(a.r.dist(&b.r) < tol, "rotations differ: {:?} vs {:?}", a.r, b.r);
        assert!((a.t - b.t).norm() < tol, "translations differ: {:?} vs {:?}", a.t, b.t);
    }

    #[test]
    fn compose_with_identity() {
        let p = SE3::from_quat_translation(
            Quat::from_axis_angle(Vec3::Y, 0.7),
            Vec3::new(1.0, -2.0, 0.5),
        );
        assert_pose_close(&p.compose(&SE3::IDENTITY), &p, 1e-6);
        assert_pose_close(&SE3::IDENTITY.compose(&p), &p, 1e-6);
    }

    #[test]
    fn inverse_composes_to_identity() {
        let p = SE3::from_quat_translation(
            Quat::from_axis_angle(Vec3::new(1.0, 0.3, -0.2), 1.1),
            Vec3::new(0.4, 2.0, -1.5),
        );
        assert_pose_close(&p.compose(&p.inverse()), &SE3::IDENTITY, 1e-5);
        assert_pose_close(&p.inverse().compose(&p), &SE3::IDENTITY, 1e-5);
    }

    #[test]
    fn transform_point_and_back() {
        let p = SE3::from_quat_translation(
            Quat::from_axis_angle(Vec3::Z, FRAC_PI_2),
            Vec3::new(1.0, 0.0, 0.0),
        );
        let x = Vec3::new(1.0, 0.0, 0.0);
        let y = p.transform_point(x);
        assert!((y - Vec3::new(1.0, 1.0, 0.0)).norm() < 1e-5);
        assert!((p.inverse().transform_point(y) - x).norm() < 1e-5);
    }

    #[test]
    fn exp_of_zero_twist_is_identity() {
        assert_pose_close(&SE3::exp([0.0; 6]), &SE3::IDENTITY, 1e-7);
    }

    #[test]
    fn exp_pure_translation() {
        let p = SE3::exp([1.0, 2.0, 3.0, 0.0, 0.0, 0.0]);
        assert_pose_close(&p, &SE3::from_translation(Vec3::new(1.0, 2.0, 3.0)), 1e-5);
    }

    #[test]
    fn exp_pure_rotation_matches_axis_angle() {
        let p = SE3::exp([0.0, 0.0, 0.0, 0.0, 0.0, FRAC_PI_2]);
        let expected = Quat::from_axis_angle(Vec3::Z, FRAC_PI_2).to_mat3();
        assert!(p.r.dist(&expected) < 1e-5);
        assert!(p.t.norm() < 1e-6);
    }

    #[test]
    fn exp_log_roundtrip() {
        for xi in [
            [0.1, -0.2, 0.3, 0.0, 0.0, 0.0],
            [0.0, 0.0, 0.0, 0.2, -0.1, 0.3],
            [0.5, 0.1, -0.4, 0.3, 0.7, -0.2],
            [1e-7, 0.0, 2e-7, 1e-7, -1e-7, 0.0],
            [0.02, 0.01, -0.03, 1.2, -0.4, 0.8],
        ] {
            let p = SE3::exp(xi);
            let back = p.log();
            for i in 0..6 {
                assert!(
                    (back[i] - xi[i]).abs() < 2e-4,
                    "xi={xi:?} back={back:?} at component {i}"
                );
            }
        }
    }

    #[test]
    fn log_exp_roundtrip_on_pose() {
        let p = SE3::from_quat_translation(
            Quat::from_axis_angle(Vec3::new(0.3, 1.0, -0.5), 0.9),
            Vec3::new(2.0, -1.0, 0.25),
        );
        let back = SE3::exp(p.log());
        assert_pose_close(&back, &p, 1e-4);
    }

    #[test]
    fn distances() {
        let a = SE3::IDENTITY;
        let b = SE3::from_quat_translation(
            Quat::from_axis_angle(Vec3::X, 0.5),
            Vec3::new(3.0, 4.0, 0.0),
        );
        assert!((a.translation_dist(&b) - 5.0).abs() < 1e-5);
        assert!((a.rotation_dist(&b) - 0.5).abs() < 1e-4);
    }

    #[test]
    fn interpolate_endpoints() {
        let a = SE3::from_translation(Vec3::X);
        let b = SE3::from_quat_translation(Quat::from_axis_angle(Vec3::Z, 1.0), Vec3::Y);
        assert_pose_close(&a.interpolate(&b, 0.0), &a, 1e-5);
        assert_pose_close(&a.interpolate(&b, 1.0), &b, 1e-5);
        let mid = a.interpolate(&b, 0.5);
        assert!((mid.t - Vec3::new(0.5, 0.5, 0.0)).norm() < 1e-5);
    }

    #[test]
    fn small_rotation_log_stable() {
        let p = SE3::exp([0.0, 0.0, 0.0, 1e-6, 0.0, 0.0]);
        let xi = p.log();
        assert!(xi.iter().all(|c| c.is_finite()));
    }
}
