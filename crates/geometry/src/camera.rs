//! Pinhole camera model.

use crate::vec::{Vec2, Vec3};

/// Pinhole camera intrinsics `(fx, fy, cx, cy)` for an image of
/// `width × height` pixels.
///
/// Conventions follow SLAMBench/KinectFusion: the camera looks down `+z`,
/// `x` points right, `y` points down; pixel `(u, v)` has `u` along `x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CameraIntrinsics {
    pub fx: f32,
    pub fy: f32,
    pub cx: f32,
    pub cy: f32,
    pub width: usize,
    pub height: usize,
}

impl CameraIntrinsics {
    /// Create intrinsics from focal lengths and principal point.
    pub const fn new(fx: f32, fy: f32, cx: f32, cy: f32, width: usize, height: usize) -> Self {
        CameraIntrinsics { fx, fy, cx, cy, width, height }
    }

    /// The ICL-NUIM/Kinect-like default: 481.2/-480 focals at 640×480,
    /// rescaled here to any resolution while preserving the field of view.
    pub fn kinect_like(width: usize, height: usize) -> Self {
        let sx = width as f32 / 640.0;
        let sy = height as f32 / 480.0;
        CameraIntrinsics::new(
            481.2 * sx,
            480.0 * sy,
            (width as f32 - 1.0) * 0.5,
            (height as f32 - 1.0) * 0.5,
            width,
            height,
        )
    }

    /// Number of pixels.
    #[inline]
    pub fn pixels(&self) -> usize {
        self.width * self.height
    }

    /// Back-project pixel `(u, v)` at depth `d` (meters along `+z`) to a 3D
    /// point in the camera frame.
    #[inline]
    pub fn backproject(&self, u: f32, v: f32, d: f32) -> Vec3 {
        Vec3::new((u - self.cx) / self.fx * d, (v - self.cy) / self.fy * d, d)
    }

    /// Unit-free ray direction through pixel `(u, v)` (z = 1 plane).
    #[inline]
    pub fn ray_dir(&self, u: f32, v: f32) -> Vec3 {
        Vec3::new((u - self.cx) / self.fx, (v - self.cy) / self.fy, 1.0)
    }

    /// Project a camera-frame point to pixel coordinates. Returns `None` for
    /// points at or behind the camera plane.
    #[inline]
    pub fn project(&self, p: Vec3) -> Option<Vec2> {
        if p.z <= crate::EPS {
            return None;
        }
        Some(Vec2::new(
            p.x / p.z * self.fx + self.cx,
            p.y / p.z * self.fy + self.cy,
        ))
    }

    /// Project and round to the nearest integer pixel, returning `None` when
    /// the projection falls outside the image bounds.
    pub fn project_to_pixel(&self, p: Vec3) -> Option<(usize, usize)> {
        let uv = self.project(p)?;
        let u = uv.x.round();
        let v = uv.y.round();
        if u < 0.0 || v < 0.0 || u >= self.width as f32 || v >= self.height as f32 {
            return None;
        }
        Some((u as usize, v as usize))
    }

    /// Intrinsics for an image downscaled by an integer `ratio` (the
    /// "compute size ratio" of the KFusion parameter space).
    pub fn downscaled(&self, ratio: usize) -> CameraIntrinsics {
        let r = ratio.max(1) as f32;
        CameraIntrinsics::new(
            self.fx / r,
            self.fy / r,
            self.cx / r,
            self.cy / r,
            (self.width / ratio.max(1)).max(1),
            (self.height / ratio.max(1)).max(1),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn project_backproject_roundtrip() {
        let k = CameraIntrinsics::kinect_like(320, 240);
        for (u, v, d) in [(10.0, 20.0, 1.0), (160.0, 120.0, 2.5), (300.0, 5.0, 0.4)] {
            let p = k.backproject(u, v, d);
            let uv = k.project(p).expect("in front of camera");
            assert!((uv.x - u).abs() < 1e-3, "u {u} vs {}", uv.x);
            assert!((uv.y - v).abs() < 1e-3, "v {v} vs {}", uv.y);
            assert!((p.z - d).abs() < 1e-6);
        }
    }

    #[test]
    fn principal_point_projects_to_center() {
        let k = CameraIntrinsics::kinect_like(640, 480);
        let p = Vec3::new(0.0, 0.0, 3.0);
        let uv = k.project(p).unwrap();
        assert!((uv.x - k.cx).abs() < 1e-4);
        assert!((uv.y - k.cy).abs() < 1e-4);
    }

    #[test]
    fn behind_camera_does_not_project() {
        let k = CameraIntrinsics::kinect_like(320, 240);
        assert!(k.project(Vec3::new(0.0, 0.0, -1.0)).is_none());
        assert!(k.project(Vec3::new(0.5, 0.5, 0.0)).is_none());
    }

    #[test]
    fn project_to_pixel_bounds() {
        let k = CameraIntrinsics::kinect_like(320, 240);
        // A point far off-axis should land outside the image.
        assert!(k.project_to_pixel(Vec3::new(100.0, 0.0, 1.0)).is_none());
        // The optical axis lands at the image center.
        let (u, v) = k.project_to_pixel(Vec3::new(0.0, 0.0, 1.0)).unwrap();
        assert_eq!((u, v), (k.cx.round() as usize, k.cy.round() as usize));
    }

    #[test]
    fn downscaled_preserves_field_of_view() {
        let k = CameraIntrinsics::kinect_like(640, 480);
        let k2 = k.downscaled(2);
        assert_eq!(k2.width, 320);
        assert_eq!(k2.height, 240);
        // The same 3D point projects to half the pixel coordinates.
        let p = Vec3::new(0.3, -0.2, 1.5);
        let uv = k.project(p).unwrap();
        let uv2 = k2.project(p).unwrap();
        assert!((uv.x / 2.0 - uv2.x).abs() < 0.5);
        assert!((uv.y / 2.0 - uv2.y).abs() < 0.5);
    }

    #[test]
    fn ray_dir_hits_backprojection() {
        let k = CameraIntrinsics::kinect_like(320, 240);
        let d = 2.0;
        let ray = k.ray_dir(100.0, 50.0);
        let bp = k.backproject(100.0, 50.0, d);
        assert!((ray * d - bp).norm() < 1e-5);
    }
}
