//! Fixed-size `f32` vectors.

use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A 2D vector, used for image-plane coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec2 {
    pub x: f32,
    pub y: f32,
}

/// A 3D vector, used for points, normals, translations and RGB colors.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec3 {
    pub x: f32,
    pub y: f32,
    pub z: f32,
}

/// A 4D vector, used for homogeneous coordinates.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vec4 {
    pub x: f32,
    pub y: f32,
    pub z: f32,
    pub w: f32,
}

impl Vec2 {
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    #[inline]
    pub const fn new(x: f32, y: f32) -> Self {
        Vec2 { x, y }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec2) -> f32 {
        self.x * o.x + self.y * o.y
    }

    /// Euclidean length.
    #[inline]
    pub fn norm(self) -> f32 {
        self.dot(self).sqrt()
    }
}

impl Vec3 {
    pub const ZERO: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 0.0 };
    pub const ONE: Vec3 = Vec3 { x: 1.0, y: 1.0, z: 1.0 };
    pub const X: Vec3 = Vec3 { x: 1.0, y: 0.0, z: 0.0 };
    pub const Y: Vec3 = Vec3 { x: 0.0, y: 1.0, z: 0.0 };
    pub const Z: Vec3 = Vec3 { x: 0.0, y: 0.0, z: 1.0 };

    #[inline]
    pub const fn new(x: f32, y: f32, z: f32) -> Self {
        Vec3 { x, y, z }
    }

    /// Vector with all three components equal to `v`.
    #[inline]
    pub const fn splat(v: f32) -> Self {
        Vec3 { x: v, y: v, z: v }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec3) -> f32 {
        self.x * o.x + self.y * o.y + self.z * o.z
    }

    /// Cross product (right-handed).
    #[inline]
    pub fn cross(self, o: Vec3) -> Vec3 {
        Vec3 {
            x: self.y * o.z - self.z * o.y,
            y: self.z * o.x - self.x * o.z,
            z: self.x * o.y - self.y * o.x,
        }
    }

    /// Euclidean length.
    #[inline]
    pub fn norm(self) -> f32 {
        self.dot(self).sqrt()
    }

    /// Squared Euclidean length (avoids the `sqrt` when only comparing).
    #[inline]
    pub fn norm_sq(self) -> f32 {
        self.dot(self)
    }

    /// Unit vector in the same direction; returns `Vec3::ZERO` for
    /// (near-)zero input rather than producing NaNs.
    #[inline]
    pub fn normalized(self) -> Vec3 {
        let n = self.norm();
        if n < crate::EPS {
            Vec3::ZERO
        } else {
            self / n
        }
    }

    /// Component-wise absolute value.
    #[inline]
    pub fn abs(self) -> Vec3 {
        Vec3::new(self.x.abs(), self.y.abs(), self.z.abs())
    }

    /// Component-wise minimum.
    #[inline]
    pub fn min(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.min(o.x), self.y.min(o.y), self.z.min(o.z))
    }

    /// Component-wise maximum.
    #[inline]
    pub fn max(self, o: Vec3) -> Vec3 {
        Vec3::new(self.x.max(o.x), self.y.max(o.y), self.z.max(o.z))
    }

    /// Largest component.
    #[inline]
    pub fn max_component(self) -> f32 {
        self.x.max(self.y).max(self.z)
    }

    /// Linear interpolation: `self` at `t = 0`, `o` at `t = 1`.
    #[inline]
    pub fn lerp(self, o: Vec3, t: f32) -> Vec3 {
        self + (o - self) * t
    }

    /// Distance to another point.
    #[inline]
    pub fn dist(self, o: Vec3) -> f32 {
        (self - o).norm()
    }

    /// True when all components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite() && self.z.is_finite()
    }

    /// Homogeneous point (w = 1).
    #[inline]
    pub fn to_homogeneous_point(self) -> Vec4 {
        Vec4::new(self.x, self.y, self.z, 1.0)
    }

    /// Homogeneous direction (w = 0).
    #[inline]
    pub fn to_homogeneous_dir(self) -> Vec4 {
        Vec4::new(self.x, self.y, self.z, 0.0)
    }
}

impl Vec4 {
    pub const ZERO: Vec4 = Vec4 { x: 0.0, y: 0.0, z: 0.0, w: 0.0 };

    #[inline]
    pub const fn new(x: f32, y: f32, z: f32, w: f32) -> Self {
        Vec4 { x, y, z, w }
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, o: Vec4) -> f32 {
        self.x * o.x + self.y * o.y + self.z * o.z + self.w * o.w
    }

    /// Drop the homogeneous coordinate (no perspective divide).
    #[inline]
    pub fn xyz(self) -> Vec3 {
        Vec3::new(self.x, self.y, self.z)
    }

    /// Perspective divide: `(x/w, y/w, z/w)`.
    #[inline]
    pub fn project(self) -> Vec3 {
        self.xyz() / self.w
    }
}

macro_rules! impl_vec_ops {
    ($t:ty { $($f:ident),+ }) => {
        impl Add for $t {
            type Output = $t;
            #[inline]
            fn add(self, o: $t) -> $t { Self { $($f: self.$f + o.$f),+ } }
        }
        impl Sub for $t {
            type Output = $t;
            #[inline]
            fn sub(self, o: $t) -> $t { Self { $($f: self.$f - o.$f),+ } }
        }
        impl Neg for $t {
            type Output = $t;
            #[inline]
            fn neg(self) -> $t { Self { $($f: -self.$f),+ } }
        }
        impl Mul<f32> for $t {
            type Output = $t;
            #[inline]
            fn mul(self, s: f32) -> $t { Self { $($f: self.$f * s),+ } }
        }
        impl Mul<$t> for f32 {
            type Output = $t;
            #[inline]
            fn mul(self, v: $t) -> $t { v * self }
        }
        impl Div<f32> for $t {
            type Output = $t;
            #[inline]
            fn div(self, s: f32) -> $t { Self { $($f: self.$f / s),+ } }
        }
        impl AddAssign for $t {
            #[inline]
            fn add_assign(&mut self, o: $t) { *self = *self + o; }
        }
        impl SubAssign for $t {
            #[inline]
            fn sub_assign(&mut self, o: $t) { *self = *self - o; }
        }
        impl MulAssign<f32> for $t {
            #[inline]
            fn mul_assign(&mut self, s: f32) { *self = *self * s; }
        }
        /// Component-wise (Hadamard) product.
        impl Mul for $t {
            type Output = $t;
            #[inline]
            fn mul(self, o: $t) -> $t { Self { $($f: self.$f * o.$f),+ } }
        }
    };
}

impl_vec_ops!(Vec2 { x, y });
impl_vec_ops!(Vec3 { x, y, z });
impl_vec_ops!(Vec4 { x, y, z, w });

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f32, b: f32) {
        assert!((a - b).abs() < 1e-5, "{a} != {b}");
    }

    #[test]
    fn vec3_arithmetic() {
        let a = Vec3::new(1.0, 2.0, 3.0);
        let b = Vec3::new(4.0, 5.0, 6.0);
        assert_eq!(a + b, Vec3::new(5.0, 7.0, 9.0));
        assert_eq!(b - a, Vec3::new(3.0, 3.0, 3.0));
        assert_eq!(a * 2.0, Vec3::new(2.0, 4.0, 6.0));
        assert_eq!(2.0 * a, a * 2.0);
        assert_eq!(a / 2.0, Vec3::new(0.5, 1.0, 1.5));
        assert_eq!(-a, Vec3::new(-1.0, -2.0, -3.0));
        assert_eq!(a * b, Vec3::new(4.0, 10.0, 18.0));
    }

    #[test]
    fn vec3_dot_cross() {
        let a = Vec3::X;
        let b = Vec3::Y;
        assert_close(a.dot(b), 0.0);
        assert_eq!(a.cross(b), Vec3::Z);
        assert_eq!(b.cross(a), -Vec3::Z);
        // Cross product is orthogonal to both inputs.
        let u = Vec3::new(1.0, 2.0, 3.0);
        let v = Vec3::new(-2.0, 0.5, 4.0);
        let c = u.cross(v);
        assert_close(c.dot(u), 0.0);
        assert_close(c.dot(v), 0.0);
    }

    #[test]
    fn vec3_norm_and_normalize() {
        let v = Vec3::new(3.0, 4.0, 0.0);
        assert_close(v.norm(), 5.0);
        assert_close(v.norm_sq(), 25.0);
        assert_close(v.normalized().norm(), 1.0);
        assert_eq!(Vec3::ZERO.normalized(), Vec3::ZERO);
    }

    #[test]
    fn vec3_min_max_abs() {
        let a = Vec3::new(-1.0, 5.0, 2.0);
        let b = Vec3::new(0.0, 3.0, 4.0);
        assert_eq!(a.min(b), Vec3::new(-1.0, 3.0, 2.0));
        assert_eq!(a.max(b), Vec3::new(0.0, 5.0, 4.0));
        assert_eq!(a.abs(), Vec3::new(1.0, 5.0, 2.0));
        assert_close(a.max_component(), 5.0);
    }

    #[test]
    fn vec3_lerp_endpoints_and_midpoint() {
        let a = Vec3::new(0.0, 0.0, 0.0);
        let b = Vec3::new(2.0, 4.0, 6.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        assert_eq!(a.lerp(b, 0.5), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn vec4_homogeneous_roundtrip() {
        let p = Vec3::new(1.0, -2.0, 3.0);
        assert_eq!(p.to_homogeneous_point().project(), p);
        assert_eq!(p.to_homogeneous_dir().xyz(), p);
        let h = Vec4::new(2.0, 4.0, 6.0, 2.0);
        assert_eq!(h.project(), Vec3::new(1.0, 2.0, 3.0));
    }

    #[test]
    fn vec2_basics() {
        let v = Vec2::new(3.0, 4.0);
        assert_close(v.norm(), 5.0);
        assert_close(v.dot(Vec2::new(1.0, 1.0)), 7.0);
    }

    #[test]
    fn is_finite_flags_nan_and_inf() {
        assert!(Vec3::new(1.0, 2.0, 3.0).is_finite());
        assert!(!Vec3::new(f32::NAN, 0.0, 0.0).is_finite());
        assert!(!Vec3::new(0.0, f32::INFINITY, 0.0).is_finite());
    }
}
