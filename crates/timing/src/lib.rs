//! The workspace's sanctioned wall-clock: a stopwatch for per-stage kernel
//! timing in the SLAM pipelines.
//!
//! # Why this crate exists
//!
//! The determinism linter (`hm-lint`, DESIGN §11) forbids `Instant::now` /
//! `SystemTime` outside a short allowlist of timing modules: wall-clock
//! readings must never reach objectives, RNG, or journal records except
//! through the measurement harness (DESIGN §9). The SLAM pipelines *do*
//! legitimately time their kernels — per-stage wall-clock is the paper's
//! runtime objective under `MeasurementMode::Timing` — but expressing that
//! with raw `Instant::now` calls forced a `lint: allow` suppression at
//! every stage boundary, and each suppression is a site a reviewer must
//! re-audit forever.
//!
//! Routing those sites through this crate inverts the burden: the clock is
//! acquired in exactly one audited module (this file, on the linter's
//! `TIMING_MODULES` allowlist), callers hold a [`Stopwatch`] that can only
//! *report* durations, and the pipelines carry zero suppressions. A new
//! wall-clock call site anywhere else still trips the linter.
//!
//! Deliberately std-only and dependency-free: it must be linkable from any
//! crate in the workspace without widening the dependency graph.

use std::time::Instant;

/// A started wall-clock timer. Read it with [`Stopwatch::elapsed_secs`];
/// there is no way to extract the underlying instant, so readings can only
/// ever be durations.
#[derive(Debug, Clone, Copy)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    /// Start timing now.
    #[inline]
    pub fn start() -> Self {
        Stopwatch { start: Instant::now() }
    }

    /// Seconds since [`Stopwatch::start`], as the `f64` the pipelines'
    /// stage-timing structs record.
    #[inline]
    pub fn elapsed_secs(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// The elapsed time as a [`std::time::Duration`], for deadline
    /// comparisons (`elapsed() > policy.deadline`) in retry loops.
    #[inline]
    pub fn elapsed(&self) -> std::time::Duration {
        self.start.elapsed()
    }

    /// Whole milliseconds since [`Stopwatch::start`] — the shape failure
    /// metadata (`FailedEvaluation::elapsed_ms`) records.
    #[inline]
    pub fn elapsed_ms(&self) -> u64 {
        self.start.elapsed().as_millis() as u64
    }

    /// Seconds since the last lap (or since start), advancing the lap
    /// marker: consecutive stages can share one stopwatch without gaps
    /// between their measured windows.
    #[inline]
    pub fn lap_secs(&mut self) -> f64 {
        let now = Instant::now();
        let lap = now.duration_since(self.start).as_secs_f64();
        self.start = now;
        lap
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elapsed_is_monotonic_and_nonnegative() {
        let sw = Stopwatch::start();
        let a = sw.elapsed_secs();
        let b = sw.elapsed_secs();
        assert!(a >= 0.0);
        assert!(b >= a);
    }

    #[test]
    fn lap_resets_the_window() {
        let mut sw = Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        let first = sw.lap_secs();
        let after = sw.elapsed_secs();
        assert!(first >= 0.002);
        // The lap marker moved: the new window is younger than the first.
        assert!(after < first);
    }

    #[test]
    fn laps_cover_the_total_without_gaps() {
        let outer = Stopwatch::start();
        let mut sw = Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let l1 = sw.lap_secs();
        std::thread::sleep(std::time::Duration::from_millis(1));
        let l2 = sw.lap_secs();
        assert!(l1 + l2 <= outer.elapsed_secs());
    }
}
