//! Sphere-traced depth and RGB rendering.

use crate::scene::Scene;
use rayon::prelude::*;
use slam_geometry::{CameraIntrinsics, Vec3, SE3};

/// Maximum ray length in meters; beyond this a pixel is "no return"
/// (matches the Kinect's ~8 m range envelope).
pub const MAX_RANGE: f32 = 8.0;

/// Surface-hit tolerance for sphere tracing (meters).
const HIT_EPS: f32 = 5e-4;

/// Maximum sphere-tracing steps per ray.
const MAX_STEPS: usize = 192;

/// A depth image in meters; `0.0` marks an invalid (no-return) pixel.
#[derive(Debug, Clone, PartialEq)]
pub struct DepthImage {
    pub width: usize,
    pub height: usize,
    /// Row-major depth in meters along the camera `+z` axis.
    pub data: Vec<f32>,
}

impl DepthImage {
    /// Depth at pixel `(u, v)`.
    #[inline]
    pub fn at(&self, u: usize, v: usize) -> f32 {
        self.data[v * self.width + u]
    }

    /// Fraction of valid (non-zero) pixels.
    pub fn valid_fraction(&self) -> f32 {
        let valid = self.data.iter().filter(|&&d| d > 0.0).count();
        valid as f32 / self.data.len().max(1) as f32
    }
}

/// A linear-RGB image, values in `[0, 1]`.
#[derive(Debug, Clone, PartialEq)]
pub struct RgbImage {
    pub width: usize,
    pub height: usize,
    /// Row-major colors.
    pub data: Vec<Vec3>,
}

impl RgbImage {
    /// Color at pixel `(u, v)`.
    #[inline]
    pub fn at(&self, u: usize, v: usize) -> Vec3 {
        self.data[v * self.width + u]
    }

    /// Scalar intensity (luma) image, used by photometric tracking.
    pub fn intensity(&self) -> Vec<f32> {
        self.data
            .iter()
            .map(|c| 0.299 * c.x + 0.587 * c.y + 0.114 * c.z)
            .collect()
    }
}

/// March one ray from `origin` along unit `dir`; returns hit distance.
fn march(scene: &Scene, origin: Vec3, dir: Vec3) -> Option<f32> {
    let mut t = 0.0f32;
    for _ in 0..MAX_STEPS {
        let p = origin + dir * t;
        let d = scene.distance(p);
        if d < HIT_EPS {
            return Some(t);
        }
        // Conservative step: the SDF is 1-Lipschitz.
        t += d.max(HIT_EPS);
        if t > MAX_RANGE {
            return None;
        }
    }
    None
}

/// Render a ground-truth depth image of `scene` from camera pose `pose`
/// (camera-to-world) with intrinsics `k`. Parallel over rows.
pub fn render_depth(scene: &Scene, k: &CameraIntrinsics, pose: &SE3) -> DepthImage {
    let mut data = vec![0.0f32; k.pixels()];
    data.par_chunks_mut(k.width)
        .enumerate()
        .for_each(|(v, row)| {
            for (u, out) in row.iter_mut().enumerate() {
                let ray_cam = k.ray_dir(u as f32, v as f32);
                let scale = ray_cam.norm(); // depth = distance / scale
                let dir = pose.transform_dir(ray_cam).normalized();
                if let Some(t) = march(scene, pose.t, dir) {
                    // Convert ray length to z-depth.
                    *out = t / scale;
                }
            }
        });
    DepthImage { width: k.width, height: k.height, data }
}

/// Render depth and shaded RGB in one pass.
///
/// Shading is Lambertian under a headlight plus a fixed room light,
/// deterministic and view-consistent enough for photometric tracking.
pub fn render_rgbd(scene: &Scene, k: &CameraIntrinsics, pose: &SE3) -> (DepthImage, RgbImage) {
    let mut depth = vec![0.0f32; k.pixels()];
    let mut rgb = vec![Vec3::ZERO; k.pixels()];
    let light_dir = Vec3::new(0.3, -0.8, 0.5).normalized(); // from above (-y is up)

    depth
        .par_chunks_mut(k.width)
        .zip(rgb.par_chunks_mut(k.width))
        .enumerate()
        .for_each(|(v, (drow, crow))| {
            for u in 0..k.width {
                let ray_cam = k.ray_dir(u as f32, v as f32);
                let scale = ray_cam.norm();
                let dir = pose.transform_dir(ray_cam).normalized();
                if let Some(t) = march(scene, pose.t, dir) {
                    drow[u] = t / scale;
                    let p = pose.t + dir * t;
                    let n = scene.normal(p);
                    let albedo = scene.albedo(p);
                    // Fixed light + headlight, both clamped Lambertian.
                    let fixed = n.dot(-light_dir).max(0.0);
                    let head = n.dot(-dir).max(0.0);
                    let shade = 0.15 + 0.55 * fixed + 0.3 * head;
                    crow[u] = albedo * shade.min(1.0);
                }
            }
        });
    (
        DepthImage { width: k.width, height: k.height, data: depth },
        RgbImage { width: k.width, height: k.height, data: rgb },
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::living_room;
    use crate::trajectory::look_at;

    fn cam() -> CameraIntrinsics {
        CameraIntrinsics::kinect_like(80, 60)
    }

    #[test]
    fn depth_mostly_valid_inside_room() {
        let scene = living_room();
        let pose = look_at(Vec3::ZERO, Vec3::new(0.0, 0.0, 2.9));
        let depth = render_depth(&scene, &cam(), &pose);
        assert!(depth.valid_fraction() > 0.95, "valid {}", depth.valid_fraction());
    }

    #[test]
    fn depth_matches_wall_distance() {
        let scene = living_room();
        // Look straight at the +z wall (3 m away from origin toward z).
        let pose = look_at(Vec3::ZERO, Vec3::new(0.0, 0.0, 2.9));
        let depth = render_depth(&scene, &cam(), &pose);
        let k = cam();
        let center = depth.at(k.cx.round() as usize, k.cy.round() as usize);
        // Bookshelf is at z≈2.62 near (0.9, *, 2.8); at image center x≈0,
        // so the wall at z=3 should be seen unless the shelf intrudes.
        assert!((center - 3.0).abs() < 0.05 || (center - 2.62).abs() < 0.1, "center {center}");
    }

    #[test]
    fn depth_deterministic_across_calls() {
        let scene = living_room();
        let pose = look_at(Vec3::new(0.4, 0.0, -0.2), Vec3::new(-1.5, 0.8, 1.0));
        let a = render_depth(&scene, &cam(), &pose);
        let b = render_depth(&scene, &cam(), &pose);
        assert_eq!(a, b); // parallelism must not change results
    }

    #[test]
    fn backprojected_hits_lie_on_surfaces() {
        let scene = living_room();
        let k = cam();
        let pose = look_at(Vec3::new(0.2, -0.1, 0.0), Vec3::new(-1.8, 0.9, 0.5));
        let depth = render_depth(&scene, &k, &pose);
        let mut checked = 0;
        for v in (0..k.height).step_by(7) {
            for u in (0..k.width).step_by(7) {
                let d = depth.at(u, v);
                if d > 0.0 {
                    let p_cam = k.backproject(u as f32, v as f32, d);
                    let p_world = pose.transform_point(p_cam);
                    let sd = scene.distance(p_world).abs();
                    assert!(sd < 5e-3, "pixel ({u},{v}) off-surface by {sd}");
                    checked += 1;
                }
            }
        }
        assert!(checked > 30);
    }

    #[test]
    fn rgbd_depth_equals_depth_only() {
        let scene = living_room();
        let pose = look_at(Vec3::ZERO, Vec3::new(1.0, 0.5, 2.0));
        let d1 = render_depth(&scene, &cam(), &pose);
        let (d2, _) = render_rgbd(&scene, &cam(), &pose);
        assert_eq!(d1, d2);
    }

    #[test]
    fn rgb_has_contrast() {
        let scene = living_room();
        let pose = look_at(Vec3::new(0.8, 0.0, -0.6), Vec3::new(-1.9, 1.0, 0.3));
        let (_, rgb) = render_rgbd(&scene, &cam(), &pose);
        let intensity = rgb.intensity();
        let mean: f32 = intensity.iter().sum::<f32>() / intensity.len() as f32;
        let var: f32 =
            intensity.iter().map(|i| (i - mean) * (i - mean)).sum::<f32>() / intensity.len() as f32;
        assert!(var > 1e-3, "image is flat, var {var}");
    }

    #[test]
    fn rgb_values_in_unit_range() {
        let scene = living_room();
        let pose = look_at(Vec3::ZERO, Vec3::new(0.5, 0.9, 1.5));
        let (_, rgb) = render_rgbd(&scene, &cam(), &pose);
        for c in &rgb.data {
            for ch in [c.x, c.y, c.z] {
                assert!((0.0..=1.0).contains(&ch));
            }
        }
    }
}
