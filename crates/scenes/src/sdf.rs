//! Signed-distance primitives for constructive scene building.
//!
//! Conventions: distances are negative inside a solid, positive outside;
//! units are meters. All primitives are exact or conservative (never
//! overestimate the distance to the surface), which sphere tracing requires.

use slam_geometry::Vec3;

/// A signed-distance shape.
#[derive(Debug, Clone)]
pub enum Sdf {
    /// Solid sphere of `radius` centered at `center`.
    Sphere { center: Vec3, radius: f32 },
    /// Axis-aligned solid box: `center` ± `half`.
    Box { center: Vec3, half: Vec3 },
    /// Axis-aligned box with rounded edges of radius `round`.
    RoundedBox { center: Vec3, half: Vec3, round: f32 },
    /// Vertical (y-axis) capped cylinder.
    CylinderY { center: Vec3, radius: f32, half_height: f32 },
    /// The *interior* of an axis-aligned box: negative outside the walls,
    /// positive in the empty inside. Models a room shell.
    RoomShell { center: Vec3, half: Vec3 },
    /// Union of shapes (minimum distance).
    Union(Vec<Sdf>),
}

impl Sdf {
    /// Signed distance from `p` to this shape's surface.
    pub fn distance(&self, p: Vec3) -> f32 {
        match self {
            Sdf::Sphere { center, radius } => (p - *center).norm() - radius,
            Sdf::Box { center, half } => box_distance(p - *center, *half),
            Sdf::RoundedBox { center, half, round } => {
                box_distance(p - *center, *half - Vec3::splat(*round)) - round
            }
            Sdf::CylinderY { center, radius, half_height } => {
                let q = p - *center;
                let radial = (q.x * q.x + q.z * q.z).sqrt() - radius;
                let axial = q.y.abs() - half_height;
                let outside =
                    Vec3::new(radial.max(0.0), axial.max(0.0), 0.0).norm();
                outside + radial.max(axial).min(0.0)
            }
            Sdf::RoomShell { center, half } => -box_distance(p - *center, *half),
            Sdf::Union(parts) => parts
                .iter()
                .map(|s| s.distance(p))
                .fold(f32::INFINITY, f32::min),
        }
    }

    /// Outward surface normal at `p`, estimated by central differences of
    /// the distance field.
    pub fn normal(&self, p: Vec3) -> Vec3 {
        const H: f32 = 1e-3;
        let dx = self.distance(p + Vec3::new(H, 0.0, 0.0)) - self.distance(p - Vec3::new(H, 0.0, 0.0));
        let dy = self.distance(p + Vec3::new(0.0, H, 0.0)) - self.distance(p - Vec3::new(0.0, H, 0.0));
        let dz = self.distance(p + Vec3::new(0.0, 0.0, H)) - self.distance(p - Vec3::new(0.0, 0.0, H));
        Vec3::new(dx, dy, dz).normalized()
    }
}

/// Exact SDF of a box of half extents `half` centered at the origin.
fn box_distance(q: Vec3, half: Vec3) -> f32 {
    let d = q.abs() - half;
    let outside = d.max(Vec3::ZERO).norm();
    let inside = d.max_component().min(0.0);
    outside + inside
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sphere_distances() {
        let s = Sdf::Sphere { center: Vec3::ZERO, radius: 1.0 };
        assert!((s.distance(Vec3::new(2.0, 0.0, 0.0)) - 1.0).abs() < 1e-6);
        assert!((s.distance(Vec3::ZERO) + 1.0).abs() < 1e-6);
        assert!(s.distance(Vec3::new(1.0, 0.0, 0.0)).abs() < 1e-6);
    }

    #[test]
    fn box_distances() {
        let b = Sdf::Box { center: Vec3::ZERO, half: Vec3::new(1.0, 2.0, 3.0) };
        assert!((b.distance(Vec3::new(3.0, 0.0, 0.0)) - 2.0).abs() < 1e-6);
        assert!(b.distance(Vec3::ZERO) < 0.0);
        assert!(b.distance(Vec3::new(1.0, 0.0, 0.0)).abs() < 1e-6);
        // Corner distance is Euclidean.
        let corner = Vec3::new(2.0, 3.0, 4.0);
        assert!((b.distance(corner) - Vec3::new(1.0, 1.0, 1.0).norm()).abs() < 1e-6);
    }

    #[test]
    fn room_shell_is_inverted_box() {
        let r = Sdf::RoomShell { center: Vec3::ZERO, half: Vec3::splat(2.0) };
        // Center of the room: far from all walls, positive distance 2.
        assert!((r.distance(Vec3::ZERO) - 2.0).abs() < 1e-6);
        // On a wall: zero.
        assert!(r.distance(Vec3::new(2.0, 0.0, 0.0)).abs() < 1e-6);
        // Outside the room: negative (inside the "solid").
        assert!(r.distance(Vec3::new(3.0, 0.0, 0.0)) < 0.0);
    }

    #[test]
    fn cylinder_distances() {
        let c = Sdf::CylinderY { center: Vec3::ZERO, radius: 1.0, half_height: 2.0 };
        assert!((c.distance(Vec3::new(3.0, 0.0, 0.0)) - 2.0).abs() < 1e-6);
        assert!((c.distance(Vec3::new(0.0, 3.0, 0.0)) - 1.0).abs() < 1e-6);
        assert!(c.distance(Vec3::ZERO) < 0.0);
    }

    #[test]
    fn union_takes_minimum() {
        let u = Sdf::Union(vec![
            Sdf::Sphere { center: Vec3::new(-2.0, 0.0, 0.0), radius: 1.0 },
            Sdf::Sphere { center: Vec3::new(2.0, 0.0, 0.0), radius: 1.0 },
        ]);
        assert!((u.distance(Vec3::ZERO) - 1.0).abs() < 1e-6);
        assert!(u.distance(Vec3::new(2.0, 0.0, 0.0)) < 0.0);
    }

    #[test]
    fn normals_point_outward() {
        let s = Sdf::Sphere { center: Vec3::ZERO, radius: 1.0 };
        let n = s.normal(Vec3::new(1.0, 0.0, 0.0));
        assert!((n - Vec3::X).norm() < 1e-2);
        let b = Sdf::Box { center: Vec3::ZERO, half: Vec3::splat(1.0) };
        let n = b.normal(Vec3::new(0.0, 1.0, 0.0));
        assert!((n - Vec3::Y).norm() < 1e-2);
        // Room shell normals point into the room.
        let r = Sdf::RoomShell { center: Vec3::ZERO, half: Vec3::splat(2.0) };
        let n = r.normal(Vec3::new(2.0, 0.0, 0.0));
        assert!((n + Vec3::X).norm() < 1e-2);
    }

    #[test]
    fn rounded_box_shrinks_then_inflates() {
        let rb = Sdf::RoundedBox { center: Vec3::ZERO, half: Vec3::splat(1.0), round: 0.2 };
        // On the face the surface is still at distance 1 from center.
        assert!(rb.distance(Vec3::new(1.0, 0.0, 0.0)).abs() < 1e-6);
        // The corner is rounded: surface is inside the sharp corner.
        let sharp_corner = Vec3::splat(1.0);
        assert!(rb.distance(sharp_corner) > 0.0);
    }

    #[test]
    fn sdf_is_1_lipschitz_along_rays() {
        // Sphere-tracing safety: |d(p) - d(q)| <= |p - q| for sample pairs.
        let shape = Sdf::Union(vec![
            Sdf::Box { center: Vec3::new(0.5, 0.0, 1.0), half: Vec3::new(0.4, 0.6, 0.2) },
            Sdf::Sphere { center: Vec3::new(-1.0, 0.3, 2.0), radius: 0.7 },
            Sdf::CylinderY { center: Vec3::new(0.0, -0.5, 3.0), radius: 0.3, half_height: 0.5 },
        ]);
        let mut failures = 0;
        for i in 0..200 {
            let t = i as f32 * 0.05;
            let p = Vec3::new(t.sin() * 2.0, (t * 0.7).cos(), t * 0.1);
            let q = p + Vec3::new(0.11, -0.07, 0.05);
            let lhs = (shape.distance(p) - shape.distance(q)).abs();
            if lhs > (p - q).norm() + 1e-4 {
                failures += 1;
            }
        }
        assert_eq!(failures, 0);
    }
}
