//! Frame-stream API: the synthetic stand-in for an ICL-NUIM sequence.

use crate::noise::NoiseModel;
use crate::render::{render_rgbd, DepthImage, RgbImage};
use crate::scene::{living_room, Scene};
use crate::trajectory::{Trajectory, TrajectoryKind};
use rayon::prelude::*;
use slam_geometry::{CameraIntrinsics, SE3};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// One RGB-D frame with its ground-truth pose.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Frame index in the sequence.
    pub index: usize,
    /// Noisy depth (meters; 0 = invalid), as a sensor would deliver.
    pub depth: DepthImage,
    /// Shaded RGB image.
    pub rgb: RgbImage,
    /// Ground-truth camera-to-world pose (never shown to the pipelines;
    /// used only by the ATE metric).
    pub gt_pose: SE3,
}

/// Configuration of a synthetic sequence.
#[derive(Debug, Clone)]
pub struct SequenceConfig {
    /// Image width in pixels.
    pub width: usize,
    /// Image height in pixels.
    pub height: usize,
    /// Number of frames.
    pub n_frames: usize,
    /// Camera path.
    pub trajectory: TrajectoryKind,
    /// Depth sensor noise model.
    pub noise: NoiseModel,
    /// Noise seed.
    pub seed: u64,
}

impl Default for SequenceConfig {
    fn default() -> Self {
        SequenceConfig {
            width: 80,
            height: 60,
            n_frames: 400,
            trajectory: TrajectoryKind::LivingRoomLoop,
            noise: NoiseModel::default(),
            seed: 0,
        }
    }
}

impl SequenceConfig {
    /// The paper's benchmark sequence: the first 400 frames of "Living Room
    /// trajectory 2", here rendered at a configurable resolution.
    pub fn living_room_2(width: usize, height: usize) -> Self {
        SequenceConfig { width, height, ..Default::default() }
    }
}

/// A lazily rendered, memoized synthetic RGB-D sequence over the
/// living-room scene.
///
/// Each frame is rendered at most once per sequence: the first access
/// renders and caches it (`OnceLock` per index, so concurrent accessors
/// block on one render instead of duplicating it), later accesses hand out
/// the cached frame. This is what lets a design-space exploration evaluate
/// N configurations over F frames with F renders instead of N × F.
pub struct SyntheticSequence {
    scene: Scene,
    trajectory: Trajectory,
    intrinsics: CameraIntrinsics,
    config: SequenceConfig,
    /// Per-index memoized frames.
    cache: Vec<OnceLock<Frame>>,
    /// How many frames have actually been rendered (not served from cache);
    /// test/bench hook for asserting render reuse.
    renders: AtomicUsize,
}

impl SyntheticSequence {
    /// Create the sequence (no frames are rendered yet).
    pub fn new(config: SequenceConfig) -> Self {
        SyntheticSequence {
            scene: living_room(),
            trajectory: Trajectory::new(config.trajectory, config.n_frames),
            intrinsics: CameraIntrinsics::kinect_like(config.width, config.height),
            cache: (0..config.n_frames).map(|_| OnceLock::new()).collect(),
            renders: AtomicUsize::new(0),
            config,
        }
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.config.n_frames
    }

    /// True when the sequence has no frames.
    pub fn is_empty(&self) -> bool {
        self.config.n_frames == 0
    }

    /// Camera intrinsics of the sensor.
    pub fn intrinsics(&self) -> CameraIntrinsics {
        self.intrinsics
    }

    /// The underlying scene (for tests and visualization).
    pub fn scene(&self) -> &Scene {
        &self.scene
    }

    /// Ground-truth pose of frame `i` without rendering it.
    pub fn gt_pose(&self, i: usize) -> SE3 {
        self.trajectory.pose(i)
    }

    /// Frame `i`, rendered on first access and cached thereafter.
    ///
    /// # Panics
    /// If `i >= len()`.
    pub fn cached_frame(&self, i: usize) -> &Frame {
        assert!(i < self.config.n_frames, "frame {i} out of range");
        self.cache[i].get_or_init(|| self.render(i))
    }

    /// Owned copy of frame `i` (clones from the cache; see
    /// [`SyntheticSequence::cached_frame`] for the borrow form).
    ///
    /// # Panics
    /// If `i >= len()`.
    pub fn frame(&self, i: usize) -> Frame {
        self.cached_frame(i).clone()
    }

    /// Actually render frame `i` (deterministic; parallel internally). The
    /// audit counter lives here — on the work itself, not the cache wrapper
    /// — so `render_count()` counts real renders no matter which path
    /// (`cached_frame`, `prerender_first`, racing workers) triggered them.
    fn render(&self, i: usize) -> Frame {
        self.renders.fetch_add(1, Ordering::Relaxed);
        let pose = self.trajectory.pose(i);
        let (clean_depth, rgb) = render_rgbd(&self.scene, &self.intrinsics, &pose);
        let depth = self.config.noise.apply(&clean_depth, self.config.seed, i);
        Frame { index: i, depth, rgb, gt_pose: pose }
    }

    /// Iterate over all frames in order, borrowing from the cache.
    pub fn frames(&self) -> impl Iterator<Item = &Frame> + '_ {
        (0..self.len()).map(move |i| self.cached_frame(i))
    }

    /// Render every frame now, so later accesses are pure cache hits (useful
    /// before timing-sensitive evaluation loops). Alias for
    /// [`SyntheticSequence::prerender_all`].
    pub fn prerender(&self) {
        self.prerender_all();
    }

    /// Render every frame now, in parallel across frames. See
    /// [`SyntheticSequence::prerender_first`].
    pub fn prerender_all(&self) {
        self.prerender_first(self.len());
    }

    /// Render the first `n` frames (clamped to the sequence length) now, in
    /// parallel across frames. Warming the cache up front means concurrent
    /// evaluation workers racing into the sequence afterwards only ever see
    /// cache hits — each frame is rendered exactly once, never once per
    /// worker, and no worker stalls on another's in-flight render.
    pub fn prerender_first(&self, n: usize) {
        (0..n.min(self.len())).into_par_iter().for_each(|i| {
            self.cached_frame(i);
        });
    }

    /// Number of frames rendered so far (cache misses). A full evaluation of
    /// N configurations over this sequence should leave this at `len()`, not
    /// `N × len()`.
    pub fn render_count(&self) -> usize {
        self.renders.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SyntheticSequence {
        SyntheticSequence::new(SequenceConfig {
            width: 40,
            height: 30,
            n_frames: 12,
            ..Default::default()
        })
    }

    #[test]
    fn frames_have_configured_shape() {
        let seq = tiny();
        let f = seq.frame(0);
        assert_eq!(f.depth.width, 40);
        assert_eq!(f.depth.height, 30);
        assert_eq!(f.rgb.data.len(), 40 * 30);
        assert_eq!(f.index, 0);
    }

    #[test]
    fn frames_deterministic() {
        let seq = tiny();
        let a = seq.frame(3);
        let b = seq.frame(3);
        assert_eq!(a.depth, b.depth);
        assert_eq!(a.rgb, b.rgb);
    }

    #[test]
    fn gt_pose_matches_frame_pose() {
        let seq = tiny();
        let f = seq.frame(5);
        assert_eq!(f.gt_pose.t, seq.gt_pose(5).t);
    }

    #[test]
    fn depth_mostly_valid_despite_noise() {
        let seq = tiny();
        for i in [0, 6, 11] {
            let f = seq.frame(i);
            assert!(f.depth.valid_fraction() > 0.85, "frame {i}: {}", f.depth.valid_fraction());
        }
    }

    #[test]
    fn noise_seed_changes_depth_but_not_rgb() {
        let a = SyntheticSequence::new(SequenceConfig { seed: 1, n_frames: 2, width: 40, height: 30, ..Default::default() });
        let b = SyntheticSequence::new(SequenceConfig { seed: 2, n_frames: 2, width: 40, height: 30, ..Default::default() });
        let fa = a.frame(0);
        let fb = b.frame(0);
        assert_ne!(fa.depth, fb.depth);
        assert_eq!(fa.rgb, fb.rgb);
    }

    #[test]
    fn frames_iterator_covers_sequence() {
        let seq = tiny();
        let indices: Vec<usize> = seq.frames().map(|f| f.index).collect();
        assert_eq!(indices, (0..12).collect::<Vec<_>>());
    }

    #[test]
    fn repeated_access_renders_once() {
        let seq = tiny();
        assert_eq!(seq.render_count(), 0);
        let a = seq.cached_frame(3);
        let depth = a.depth.clone();
        let b = seq.cached_frame(3);
        assert_eq!(depth, b.depth);
        assert_eq!(seq.render_count(), 1);
        let _ = seq.frame(3); // owned path also hits the cache
        assert_eq!(seq.render_count(), 1);
    }

    #[test]
    fn prerender_fills_cache_completely() {
        let seq = tiny();
        seq.prerender();
        assert_eq!(seq.render_count(), 12);
        // Iterating afterwards is pure cache hits.
        assert_eq!(seq.frames().count(), 12);
        assert_eq!(seq.render_count(), 12);
    }

    #[test]
    fn prerender_first_warms_only_the_prefix() {
        let seq = tiny();
        seq.prerender_first(5);
        assert_eq!(seq.render_count(), 5);
        // Over-asking clamps to the sequence length.
        seq.prerender_first(1000);
        assert_eq!(seq.render_count(), 12);
    }

    #[test]
    fn racing_workers_never_duplicate_renders() {
        // Four OS threads hammer a cold cache concurrently; the per-index
        // OnceLock must serialize each frame's first render, so the audit
        // counter ends exactly at the frame count — not threads × frames.
        let seq = tiny();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for i in 0..seq.len() {
                        let f = seq.cached_frame(i);
                        assert_eq!(f.index, i);
                    }
                });
            }
        });
        assert_eq!(seq.render_count(), 12, "duplicate renders under contention");
    }

    #[test]
    fn default_is_living_room_400() {
        let cfg = SequenceConfig::living_room_2(64, 48);
        assert_eq!(cfg.n_frames, 400);
        assert_eq!(cfg.trajectory, TrajectoryKind::LivingRoomLoop);
    }
}
