//! Procedural ICL-NUIM-like RGB-D sequences.
//!
//! The paper evaluates on the first 400 frames of the ICL-NUIM *Living Room
//! trajectory 2* dataset. That dataset is a rendered synthetic living room;
//! this crate reproduces its *nature* — noiseless ground-truth geometry plus
//! a Kinect-style noise model — without shipping gigabytes of frames:
//!
//! * [`sdf`] — constructive signed-distance primitives,
//! * [`scene`] — a furnished living-room scene with per-object albedo,
//! * [`trajectory`] — smooth closed-loop camera paths with exact ground
//!   truth poses,
//! * [`render`] — parallel sphere-traced depth + RGB rendering,
//! * [`noise`] — Kinect-like depth noise (deterministic per pixel/frame),
//! * [`sequence`] — the frame-stream API consumed by the SLAM pipelines.
//!
//! Rendering is deterministic: the same `(sequence config, frame index)`
//! always produces bit-identical images, regardless of thread scheduling.

pub mod noise;
pub mod render;
pub mod scene;
pub mod sdf;
pub mod sequence;
pub mod trajectory;

pub use noise::NoiseModel;
pub use render::{render_depth, render_rgbd, DepthImage, RgbImage};
pub use scene::{living_room, Scene};
pub use sdf::Sdf;
pub use sequence::{Frame, SequenceConfig, SyntheticSequence};
pub use trajectory::{look_at, Trajectory, TrajectoryKind};
