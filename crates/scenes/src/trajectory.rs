//! Ground-truth camera trajectories.

use slam_geometry::{Mat3, Vec3, SE3};

/// Build a camera-to-world pose at `eye` looking toward `target`.
///
/// World convention: `+y` is down. The camera frame has `+z` forward,
/// `+x` right, `+y` down, so the camera's y axis is aligned with world
/// down as far as the forward direction allows (no roll).
pub fn look_at(eye: Vec3, target: Vec3) -> SE3 {
    let z = (target - eye).normalized();
    let down = Vec3::Y; // world down
    // Project world-down onto the plane orthogonal to forward.
    let mut y = down - z * down.dot(z);
    if y.norm() < 1e-5 {
        // Looking straight down/up: pick an arbitrary horizontal axis.
        y = Vec3::Z - z * Vec3::Z.dot(z);
    }
    let y = y.normalized();
    let x = y.cross(z);
    SE3::new(Mat3::from_cols(x, y, z), eye)
}

/// The shape of a generated trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrajectoryKind {
    /// Smooth closed orbit around the room interior, gaze sweeping the
    /// walls — the "living room trajectory 2" stand-in. Returns to its
    /// start, enabling loop-closure.
    LivingRoomLoop,
    /// Gentle side-to-side scan of one wall (mostly small motion; easy).
    WallScan,
    /// Faster, jerkier orbit (stress test for tracking).
    FastOrbit,
}

/// A parametric ground-truth trajectory sampled at frame indices.
#[derive(Debug, Clone)]
pub struct Trajectory {
    kind: TrajectoryKind,
    n_frames: usize,
}

impl Trajectory {
    /// A trajectory of `n_frames` poses.
    pub fn new(kind: TrajectoryKind, n_frames: usize) -> Self {
        assert!(n_frames > 0, "trajectory needs at least one frame");
        Trajectory { kind, n_frames }
    }

    /// Number of frames.
    pub fn len(&self) -> usize {
        self.n_frames
    }

    /// True when the trajectory has zero frames (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.n_frames == 0
    }

    /// Camera-to-world pose of frame `i`.
    ///
    /// # Panics
    /// If `i >= len()`.
    pub fn pose(&self, i: usize) -> SE3 {
        assert!(i < self.n_frames, "frame {i} out of range");
        let t = i as f32 / self.n_frames as f32; // [0, 1)
        match self.kind {
            TrajectoryKind::LivingRoomLoop => {
                let ang = t * std::f32::consts::TAU;
                // Eye orbits an ellipse, bobbing slightly in height.
                let eye = Vec3::new(
                    1.1 * ang.cos(),
                    -0.15 + 0.1 * (2.0 * ang).sin(),
                    1.4 * ang.sin(),
                );
                // Gaze sweeps around the room ahead of the eye.
                let gaze_ang = ang + 0.9;
                let target = Vec3::new(
                    2.2 * gaze_ang.cos(),
                    0.5 + 0.3 * (3.0 * ang).cos(),
                    2.6 * gaze_ang.sin(),
                );
                look_at(eye, target)
            }
            TrajectoryKind::WallScan => {
                let sweep = (t * std::f32::consts::TAU).sin();
                let eye = Vec3::new(0.8 * sweep, -0.1, -0.5);
                let target = Vec3::new(1.2 * sweep, 0.6, 2.9);
                look_at(eye, target)
            }
            TrajectoryKind::FastOrbit => {
                let ang = t * std::f32::consts::TAU * 2.0; // two laps
                let eye = Vec3::new(
                    0.9 * ang.cos(),
                    -0.2 + 0.25 * (5.0 * ang).sin(),
                    1.1 * ang.sin(),
                );
                let target = Vec3::new(2.0 * (ang + 1.2).cos(), 0.8, 2.4 * (ang + 1.2).sin());
                look_at(eye, target)
            }
        }
    }

    /// All poses.
    pub fn poses(&self) -> Vec<SE3> {
        (0..self.n_frames).map(|i| self.pose(i)).collect()
    }

    /// Largest translational step between consecutive frames (meters) —
    /// a sanity metric for trackability at a given frame rate.
    pub fn max_step(&self) -> f32 {
        (1..self.n_frames)
            .map(|i| self.pose(i).translation_dist(&self.pose(i - 1)))
            .fold(0.0, f32::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scene::{living_room, ROOM_HALF};

    #[test]
    fn look_at_points_camera_forward() {
        let eye = Vec3::new(1.0, 0.0, 0.0);
        let target = Vec3::new(1.0, 0.0, 5.0);
        let pose = look_at(eye, target);
        // Camera +z in world coordinates should point from eye to target.
        let fwd = pose.transform_dir(Vec3::Z);
        assert!((fwd - Vec3::Z).norm() < 1e-5);
        assert!((pose.t - eye).norm() < 1e-6);
    }

    #[test]
    fn look_at_rotation_is_orthonormal() {
        for (e, t) in [
            (Vec3::ZERO, Vec3::new(1.0, 2.0, 3.0)),
            (Vec3::new(1.0, -0.5, 0.2), Vec3::new(-2.0, 0.5, 1.0)),
        ] {
            let p = look_at(e, t);
            assert!((p.r.transpose() * p.r).dist(&Mat3::IDENTITY) < 1e-4);
            assert!((p.r.det() - 1.0).abs() < 1e-4);
        }
    }

    #[test]
    fn look_at_no_roll() {
        // The camera x axis should stay horizontal (no world-y component)
        // for a horizontal gaze.
        let p = look_at(Vec3::ZERO, Vec3::new(1.0, 0.0, 1.0));
        let x_world = p.transform_dir(Vec3::X);
        assert!(x_world.y.abs() < 1e-4, "{x_world:?}");
    }

    #[test]
    fn look_at_degenerate_straight_down() {
        let p = look_at(Vec3::ZERO, Vec3::new(0.0, 5.0, 0.0));
        // Must still be a valid rotation.
        assert!((p.r.det() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn trajectory_stays_inside_room() {
        let scene = living_room();
        for kind in [
            TrajectoryKind::LivingRoomLoop,
            TrajectoryKind::WallScan,
            TrajectoryKind::FastOrbit,
        ] {
            let traj = Trajectory::new(kind, 100);
            for i in 0..traj.len() {
                let eye = traj.pose(i).t;
                assert!(
                    eye.x.abs() < ROOM_HALF.x && eye.y.abs() < ROOM_HALF.y && eye.z.abs() < ROOM_HALF.z,
                    "{kind:?} frame {i} eye {eye:?} outside room"
                );
                // The camera must not start inside furniture.
                assert!(scene.distance(eye) > 0.05, "{kind:?} frame {i} eye in furniture");
            }
        }
    }

    #[test]
    fn living_room_loop_closes() {
        let traj = Trajectory::new(TrajectoryKind::LivingRoomLoop, 400);
        let first = traj.pose(0);
        let last = traj.pose(399);
        // After a full orbit the last frame is close to the first again.
        assert!(first.translation_dist(&last) < 0.1, "gap {}", first.translation_dist(&last));
    }

    #[test]
    fn steps_are_trackable() {
        // At 400 frames / loop, inter-frame motion must stay small enough
        // for projective ICP (a few cm).
        let traj = Trajectory::new(TrajectoryKind::LivingRoomLoop, 400);
        assert!(traj.max_step() < 0.05, "max step {}", traj.max_step());
    }

    #[test]
    fn poses_deterministic() {
        let t1 = Trajectory::new(TrajectoryKind::FastOrbit, 50);
        let t2 = Trajectory::new(TrajectoryKind::FastOrbit, 50);
        for i in 0..50 {
            assert_eq!(t1.pose(i).t, t2.pose(i).t);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn pose_out_of_range_panics() {
        Trajectory::new(TrajectoryKind::WallScan, 10).pose(10);
    }
}
