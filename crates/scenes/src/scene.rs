//! Colored multi-object scenes.

use crate::sdf::Sdf;
use slam_geometry::Vec3;

/// One colored object in a scene.
#[derive(Debug, Clone)]
pub struct SceneObject {
    /// Shape of the object.
    pub shape: Sdf,
    /// Albedo color (linear RGB in `[0, 1]`).
    pub albedo: Vec3,
    /// Name, for debugging and tests.
    pub name: &'static str,
}

/// A renderable scene: a set of colored SDF objects.
///
/// World convention matches the camera convention of `slam-geometry`:
/// `+y` points **down** (floor at positive y), `+x` right, `+z` forward.
#[derive(Debug, Clone)]
pub struct Scene {
    objects: Vec<SceneObject>,
}

impl Scene {
    /// Build a scene from objects.
    pub fn new(objects: Vec<SceneObject>) -> Self {
        assert!(!objects.is_empty(), "a scene needs at least one object");
        Scene { objects }
    }

    /// The objects.
    pub fn objects(&self) -> &[SceneObject] {
        &self.objects
    }

    /// Signed distance to the nearest surface.
    pub fn distance(&self, p: Vec3) -> f32 {
        self.objects
            .iter()
            .map(|o| o.shape.distance(p))
            .fold(f32::INFINITY, f32::min)
    }

    /// Signed distance plus the index of the nearest object.
    pub fn distance_with_object(&self, p: Vec3) -> (f32, usize) {
        let mut best = (f32::INFINITY, 0);
        for (i, o) in self.objects.iter().enumerate() {
            let d = o.shape.distance(p);
            if d < best.0 {
                best = (d, i);
            }
        }
        best
    }

    /// Outward surface normal of the whole scene at `p`.
    pub fn normal(&self, p: Vec3) -> Vec3 {
        const H: f32 = 1e-3;
        let d = |q: Vec3| self.distance(q);
        Vec3::new(
            d(p + Vec3::new(H, 0.0, 0.0)) - d(p - Vec3::new(H, 0.0, 0.0)),
            d(p + Vec3::new(0.0, H, 0.0)) - d(p - Vec3::new(0.0, H, 0.0)),
            d(p + Vec3::new(0.0, 0.0, H)) - d(p - Vec3::new(0.0, 0.0, H)),
        )
        .normalized()
    }

    /// Albedo of the object nearest to `p`.
    pub fn albedo(&self, p: Vec3) -> Vec3 {
        let (_, i) = self.distance_with_object(p);
        self.objects[i].albedo
    }
}

/// Half extents of the living-room shell (x, y, z) in meters.
pub const ROOM_HALF: Vec3 = Vec3 { x: 2.5, y: 1.4, z: 3.0 };

/// The synthetic living room used throughout the reproduction, standing in
/// for ICL-NUIM's living-room model: a 5 × 2.8 × 6 m room containing a sofa,
/// a coffee table, a side table, a lamp, a bookshelf and a rug — enough
/// geometric and photometric structure for both ICP and RGB tracking.
pub fn living_room() -> Scene {
    let floor_y = ROOM_HALF.y; // +y is down; floor sits at +1.4
    Scene::new(vec![
        SceneObject {
            shape: Sdf::RoomShell { center: Vec3::ZERO, half: ROOM_HALF },
            albedo: Vec3::new(0.85, 0.82, 0.75),
            name: "room-shell",
        },
        SceneObject {
            // Sofa seat against the -x wall.
            shape: Sdf::RoundedBox {
                center: Vec3::new(-1.9, floor_y - 0.25, 0.2),
                half: Vec3::new(0.45, 0.25, 1.0),
                round: 0.06,
            },
            albedo: Vec3::new(0.55, 0.15, 0.12),
            name: "sofa-seat",
        },
        SceneObject {
            // Sofa backrest.
            shape: Sdf::RoundedBox {
                center: Vec3::new(-2.3, floor_y - 0.6, 0.2),
                half: Vec3::new(0.12, 0.45, 1.0),
                round: 0.05,
            },
            albedo: Vec3::new(0.5, 0.13, 0.1),
            name: "sofa-back",
        },
        SceneObject {
            // Coffee table near the room center.
            shape: Sdf::Box {
                center: Vec3::new(-0.4, floor_y - 0.35, 0.3),
                half: Vec3::new(0.5, 0.035, 0.35),
            },
            albedo: Vec3::new(0.45, 0.3, 0.15),
            name: "coffee-table-top",
        },
        SceneObject {
            shape: Sdf::CylinderY {
                center: Vec3::new(-0.4, floor_y - 0.17, 0.3),
                radius: 0.05,
                half_height: 0.17,
            },
            albedo: Vec3::new(0.3, 0.2, 0.1),
            name: "coffee-table-leg",
        },
        SceneObject {
            // Side table by the +x wall.
            shape: Sdf::Box {
                center: Vec3::new(1.9, floor_y - 0.3, -1.2),
                half: Vec3::new(0.3, 0.3, 0.3),
            },
            albedo: Vec3::new(0.2, 0.35, 0.5),
            name: "side-table",
        },
        SceneObject {
            // Spherical lamp on the side table.
            shape: Sdf::Sphere {
                center: Vec3::new(1.9, floor_y - 0.75, -1.2),
                radius: 0.15,
            },
            albedo: Vec3::new(0.95, 0.9, 0.6),
            name: "lamp",
        },
        SceneObject {
            // Bookshelf against the +z wall.
            shape: Sdf::Box {
                center: Vec3::new(0.9, floor_y - 0.9, 2.8),
                half: Vec3::new(0.8, 0.9, 0.18),
            },
            albedo: Vec3::new(0.35, 0.25, 0.2),
            name: "bookshelf",
        },
        SceneObject {
            // Rug: a very flat box on the floor (adds RGB texture edges).
            shape: Sdf::Box {
                center: Vec3::new(-0.2, floor_y - 0.005, 0.4),
                half: Vec3::new(1.0, 0.006, 0.8),
            },
            albedo: Vec3::new(0.15, 0.35, 0.25),
            name: "rug",
        },
        SceneObject {
            // Armchair opposite the sofa.
            shape: Sdf::RoundedBox {
                center: Vec3::new(0.9, floor_y - 0.3, -1.6),
                half: Vec3::new(0.35, 0.3, 0.35),
                round: 0.08,
            },
            albedo: Vec3::new(0.2, 0.25, 0.45),
            name: "armchair",
        },
        // Wall relief: pictures, frames and sills on every wall so that no
        // viewing direction is a geometrically degenerate bare plane (the
        // real ICL-NUIM room is similarly cluttered). Essential for
        // depth-only ICP observability.
        SceneObject {
            shape: Sdf::Box {
                center: Vec3::new(2.46, -0.3, 0.8),
                half: Vec3::new(0.05, 0.4, 0.6),
            },
            albedo: Vec3::new(0.7, 0.6, 0.3),
            name: "picture-east",
        },
        SceneObject {
            shape: Sdf::Box {
                center: Vec3::new(-2.46, -0.5, -1.2),
                half: Vec3::new(0.05, 0.5, 0.4),
            },
            albedo: Vec3::new(0.3, 0.6, 0.7),
            name: "picture-west",
        },
        SceneObject {
            shape: Sdf::Box {
                center: Vec3::new(-0.9, -0.4, 2.95),
                half: Vec3::new(0.7, 0.45, 0.06),
            },
            albedo: Vec3::new(0.55, 0.5, 0.45),
            name: "window-frame-north",
        },
        SceneObject {
            shape: Sdf::Box {
                center: Vec3::new(0.4, -0.2, -2.95),
                half: Vec3::new(0.5, 0.65, 0.06),
            },
            albedo: Vec3::new(0.5, 0.35, 0.25),
            name: "door-south",
        },
        SceneObject {
            shape: Sdf::Box {
                center: Vec3::new(-1.7, -0.35, -2.93),
                half: Vec3::new(0.45, 0.3, 0.05),
            },
            albedo: Vec3::new(0.65, 0.55, 0.3),
            name: "picture-south",
        },
        SceneObject {
            // Skirting along the east wall.
            shape: Sdf::Box {
                center: Vec3::new(2.46, floor_y - 0.06, 0.0),
                half: Vec3::new(0.05, 0.06, 2.98),
            },
            albedo: Vec3::new(0.9, 0.88, 0.85),
            name: "skirting-east",
        },
        SceneObject {
            // Skirting along the north wall.
            shape: Sdf::Box {
                center: Vec3::new(0.0, floor_y - 0.06, 2.96),
                half: Vec3::new(2.48, 0.06, 0.05),
            },
            albedo: Vec3::new(0.9, 0.88, 0.85),
            name: "skirting-north",
        },
        SceneObject {
            // Ceiling lamp: hemisphere-ish sphere at the ceiling.
            shape: Sdf::Sphere {
                center: Vec3::new(0.2, -1.4, 0.3),
                radius: 0.25,
            },
            albedo: Vec3::new(0.95, 0.95, 0.85),
            name: "ceiling-lamp",
        },
        SceneObject {
            // Floor cabinet along the south wall.
            shape: Sdf::Box {
                center: Vec3::new(1.6, floor_y - 0.45, -2.7),
                half: Vec3::new(0.5, 0.45, 0.25),
            },
            albedo: Vec3::new(0.4, 0.3, 0.22),
            name: "cabinet-south",
        },
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn living_room_center_is_empty() {
        let s = living_room();
        // The camera region (near room center) must be free space.
        assert!(s.distance(Vec3::ZERO) > 0.3);
        assert!(s.distance(Vec3::new(0.5, -0.2, -0.5)) > 0.1);
    }

    #[test]
    fn furniture_is_inside_the_room() {
        let s = living_room();
        for o in s.objects() {
            if o.name == "room-shell" {
                continue;
            }
            // Project the origin onto the object's surface by sphere
            // stepping along the SDF gradient; the resulting surface point
            // must lie within the room shell.
            let mut p = Vec3::ZERO;
            for _ in 0..64 {
                let d = o.shape.distance(p);
                if d.abs() < 1e-4 {
                    break;
                }
                p = p - o.shape.normal(p) * d;
            }
            assert!(
                o.shape.distance(p).abs() < 1e-2,
                "projection did not converge for {}",
                o.name
            );
            let eps = 1e-3;
            assert!(
                p.x.abs() <= ROOM_HALF.x + eps
                    && p.y.abs() <= ROOM_HALF.y + eps
                    && p.z.abs() <= ROOM_HALF.z + eps,
                "{} sticks out of the room at {p:?}",
                o.name
            );
        }
    }

    #[test]
    fn distance_with_object_consistent() {
        let s = living_room();
        for p in [Vec3::ZERO, Vec3::new(1.0, 0.5, -1.0), Vec3::new(-1.9, 1.0, 0.2)] {
            let (d, i) = s.distance_with_object(p);
            assert!((d - s.distance(p)).abs() < 1e-6);
            assert!(i < s.objects().len());
        }
    }

    #[test]
    fn albedo_varies_across_scene() {
        let s = living_room();
        // Near the sofa vs. near the lamp: different colors.
        let sofa = s.albedo(Vec3::new(-1.9, 1.15, 0.2));
        let lamp = s.albedo(Vec3::new(1.9, 0.65, -1.2));
        assert!((sofa - lamp).norm() > 0.2);
    }

    #[test]
    fn scene_normal_on_floor_points_up() {
        let s = living_room();
        // Floor at y = +1.4 (y down); outward (into room) normal is -y.
        let n = s.normal(Vec3::new(1.8, ROOM_HALF.y, 1.0));
        assert!(n.y < -0.9, "floor normal {n:?}");
    }

    #[test]
    #[should_panic(expected = "at least one object")]
    fn empty_scene_panics() {
        Scene::new(vec![]);
    }
}
