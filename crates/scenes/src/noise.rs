//! Kinect-style depth sensor noise.
//!
//! The model follows the empirical characterization of structured-light
//! depth cameras (Khoshelham & Elberink 2012): axial noise grows
//! quadratically with range, plus quantization and edge dropout. All noise
//! is a pure function of `(seed, frame, pixel)` so renders stay
//! deterministic under any parallel schedule.

use crate::render::DepthImage;
use rayon::prelude::*;

/// Parameters of the synthetic depth-noise model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NoiseModel {
    /// Base axial standard deviation (meters) at short range.
    pub sigma_base: f32,
    /// Quadratic range coefficient: `σ(z) = sigma_base + coeff·(z − 0.4)²`.
    pub sigma_quad: f32,
    /// Disparity quantization step at 1 m (meters); scales with z².
    pub quantization: f32,
    /// Probability that a pixel drops out entirely.
    pub dropout: f32,
    /// Depth below which the sensor returns nothing (min range).
    pub min_range: f32,
}

impl Default for NoiseModel {
    fn default() -> Self {
        NoiseModel {
            sigma_base: 0.0012,
            sigma_quad: 0.0019,
            quantization: 0.0008,
            dropout: 0.004,
            min_range: 0.4,
        }
    }
}

impl NoiseModel {
    /// A noiseless model (identity except for the min-range cutoff).
    pub fn none() -> Self {
        NoiseModel { sigma_base: 0.0, sigma_quad: 0.0, quantization: 0.0, dropout: 0.0, min_range: 0.0 }
    }

    /// Axial standard deviation at depth `z`.
    pub fn sigma(&self, z: f32) -> f32 {
        let d = (z - 0.4).max(0.0);
        self.sigma_base + self.sigma_quad * d * d
    }

    /// Apply the model to a clean depth image, producing the noisy frame a
    /// real sensor would deliver.
    pub fn apply(&self, depth: &DepthImage, seed: u64, frame: usize) -> DepthImage {
        let mut out = depth.clone();
        out.data
            .par_iter_mut()
            .enumerate()
            .for_each(|(pix, d)| {
                if *d <= 0.0 {
                    return;
                }
                if *d < self.min_range {
                    *d = 0.0;
                    return;
                }
                let (u1, u2, u3) = uniforms(seed, frame as u64, pix as u64);
                if u3 < self.dropout as f64 {
                    *d = 0.0;
                    return;
                }
                // Box–Muller normal sample.
                let g = (-2.0 * (u1.max(1e-12)).ln()).sqrt()
                    * (std::f32::consts::TAU as f64 * u2).cos() as f64;
                let mut z = *d as f64 + (self.sigma(*d) as f64) * g;
                // Disparity-style quantization: step grows with z².
                if self.quantization > 0.0 {
                    let step = (self.quantization as f64) * z * z;
                    if step > 0.0 {
                        z = (z / step).round() * step;
                    }
                }
                *d = z.max(0.0) as f32;
            });
        out
    }
}

/// Three decorrelated uniforms in `[0, 1)` from a counter-based hash —
/// stable under parallel iteration order.
fn uniforms(seed: u64, frame: u64, pix: u64) -> (f64, f64, f64) {
    let mut x = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(frame.wrapping_mul(0xBF58_476D_1CE4_E5B9))
        .wrapping_add(pix.wrapping_mul(0x94D0_49BB_1331_11EB));
    let mut next = || {
        // splitmix64 step
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z = z ^ (z >> 31);
        (z >> 11) as f64 / (1u64 << 53) as f64
    };
    (next(), next(), next())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_depth(w: usize, h: usize, z: f32) -> DepthImage {
        DepthImage { width: w, height: h, data: vec![z; w * h] }
    }

    #[test]
    fn noiseless_model_is_identity() {
        let d = flat_depth(32, 24, 2.0);
        let out = NoiseModel::none().apply(&d, 7, 0);
        assert_eq!(d, out);
    }

    #[test]
    fn noise_is_deterministic() {
        let d = flat_depth(32, 24, 2.0);
        let m = NoiseModel::default();
        let a = m.apply(&d, 7, 3);
        let b = m.apply(&d, 7, 3);
        assert_eq!(a, b);
    }

    #[test]
    fn different_frames_differ() {
        let d = flat_depth(32, 24, 2.0);
        let m = NoiseModel::default();
        let a = m.apply(&d, 7, 0);
        let b = m.apply(&d, 7, 1);
        assert_ne!(a, b);
    }

    #[test]
    fn noise_magnitude_tracks_sigma() {
        let m = NoiseModel { quantization: 0.0, dropout: 0.0, ..Default::default() };
        for z in [1.0f32, 3.0, 5.0] {
            let d = flat_depth(64, 64, z);
            let noisy = m.apply(&d, 1, 0);
            let errs: Vec<f64> = noisy
                .data
                .iter()
                .map(|&v| (v - z) as f64)
                .collect();
            let mean = errs.iter().sum::<f64>() / errs.len() as f64;
            let std =
                (errs.iter().map(|e| (e - mean) * (e - mean)).sum::<f64>() / errs.len() as f64).sqrt();
            let expected = m.sigma(z) as f64;
            assert!(
                std > expected * 0.7 && std < expected * 1.3,
                "z={z}: std {std} vs sigma {expected}"
            );
            assert!(mean.abs() < expected, "bias {mean}");
        }
    }

    #[test]
    fn sigma_grows_with_range() {
        let m = NoiseModel::default();
        assert!(m.sigma(5.0) > m.sigma(2.0));
        assert!(m.sigma(2.0) > m.sigma(0.5));
    }

    #[test]
    fn min_range_cutoff() {
        let m = NoiseModel::default();
        let d = flat_depth(8, 8, 0.2); // below 0.4 m
        let out = m.apply(&d, 1, 0);
        assert!(out.data.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn dropout_rate_approximate() {
        let m = NoiseModel { dropout: 0.25, sigma_base: 0.0, sigma_quad: 0.0, quantization: 0.0, min_range: 0.0 };
        let d = flat_depth(128, 128, 2.0);
        let out = m.apply(&d, 5, 0);
        let dropped = out.data.iter().filter(|&&v| v == 0.0).count() as f64;
        let rate = dropped / out.data.len() as f64;
        assert!((rate - 0.25).abs() < 0.05, "dropout rate {rate}");
    }

    #[test]
    fn invalid_pixels_stay_invalid() {
        let mut d = flat_depth(8, 8, 2.0);
        d.data[5] = 0.0;
        let out = NoiseModel::default().apply(&d, 1, 0);
        assert_eq!(out.data[5], 0.0);
    }

    #[test]
    fn quantization_snaps_depths() {
        let m = NoiseModel { sigma_base: 0.0, sigma_quad: 0.0, dropout: 0.0, quantization: 0.01, min_range: 0.0 };
        let d = flat_depth(4, 4, 2.0);
        let out = m.apply(&d, 1, 0);
        // step at z=2 is 0.01*4 = 0.04; 2.0/0.04 = 50 exactly.
        for &v in &out.data {
            let step = 0.01f64 * (v as f64) * (v as f64);
            let k = (v as f64) / step;
            assert!((k - k.round()).abs() < 1e-6);
        }
    }
}
