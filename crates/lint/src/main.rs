//! CLI for the workspace determinism & failure-semantics linter.
//!
//! ```text
//! hm-lint --workspace --deny warnings          # the CI gate
//! hm-lint crates/core/src/journal.rs           # specific files
//! hm-lint --workspace --json                   # machine-readable report
//! hm-lint --list-rules
//! ```
//!
//! Exit codes: 0 clean, 1 violations at error severity, 2 usage/IO error.

use hm_lint::engine::Severity;
use hm_lint::rules::default_rules;
use hm_lint::{
    allow_rule, deny_warnings, render_human, render_json, scan_workspace, WorkspaceReport,
};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Options {
    root: PathBuf,
    paths: Vec<PathBuf>,
    json: bool,
    deny_warnings: bool,
    allows: Vec<String>,
    list_rules: bool,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
}

fn usage() -> &'static str {
    "usage: hm-lint [--workspace] [--root DIR] [--json] [--deny warnings] \
     [--allow RULE]... [--baseline FILE] [--write-baseline FILE] \
     [--list-rules] [FILE...]\n\
     With no FILEs (or with --workspace) lints every .rs under the workspace root.\n\
     --baseline ratchets suppression counts against a committed FILE: any rule\n\
     whose count grew or shrank relative to it fails the run."
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        root: workspace_root(),
        paths: Vec::new(),
        json: false,
        deny_warnings: false,
        allows: Vec::new(),
        list_rules: false,
        baseline: None,
        write_baseline: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--workspace" => {} // the default; kept for explicit invocations
            "--json" => opts.json = true,
            "--deny" => match args.next().as_deref() {
                Some("warnings") => opts.deny_warnings = true,
                other => return Err(format!("--deny takes `warnings`, got {other:?}")),
            },
            "--deny-warnings" => opts.deny_warnings = true,
            "--allow" => match args.next() {
                Some(rule) => opts.allows.push(rule),
                None => return Err("--allow needs a rule name".into()),
            },
            "--root" => match args.next() {
                Some(dir) => opts.root = PathBuf::from(dir),
                None => return Err("--root needs a directory".into()),
            },
            "--baseline" => match args.next() {
                Some(p) => opts.baseline = Some(PathBuf::from(p)),
                None => return Err("--baseline needs a file path".into()),
            },
            "--write-baseline" => match args.next() {
                Some(p) => opts.write_baseline = Some(PathBuf::from(p)),
                None => return Err("--write-baseline needs a file path".into()),
            },
            "--list-rules" => opts.list_rules = true,
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            file => opts.paths.push(PathBuf::from(file)),
        }
    }
    Ok(opts)
}

/// Nearest ancestor of the current directory holding a `Cargo.toml` with a
/// `[workspace]` table; falls back to the current directory.
fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut dir: &Path = &cwd;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(text) = std::fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return dir.to_path_buf();
            }
        }
        match dir.parent() {
            Some(p) => dir = p,
            None => return cwd,
        }
    }
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("hm-lint: {msg}\n{}", usage());
            return ExitCode::from(2);
        }
    };
    let rules = default_rules();
    if opts.list_rules {
        for r in &rules {
            println!(
                "{:<28} {:<8} {}",
                r.name(),
                r.severity().to_string(),
                r.description()
            );
        }
        return ExitCode::SUCCESS;
    }

    let mut report = if opts.paths.is_empty() {
        match scan_workspace(&opts.root, &rules) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("hm-lint: scanning {}: {e}", opts.root.display());
                return ExitCode::from(2);
            }
        }
    } else {
        let mut report = WorkspaceReport::default();
        for path in &opts.paths {
            let rel: String = path
                .strip_prefix(&opts.root)
                .unwrap_or(path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("hm-lint: reading {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            };
            let fr =
                hm_lint::engine::check_file(path, &rel, &src, &rules, hm_lint::is_test_path(&rel));
            report.diagnostics.extend(fr.diagnostics);
            for (rule, _line) in fr.suppressed {
                *report.suppressed.entry(rule).or_insert(0) += 1;
            }
            report.files_scanned += 1;
        }
        report
    };

    for rule in &opts.allows {
        allow_rule(&mut report, rule);
    }
    if opts.deny_warnings {
        deny_warnings(&mut report);
    }

    if opts.json {
        print!("{}", render_json(&report, &opts.root));
    } else {
        print!("{}", render_human(&report, &opts.root));
    }

    if let Some(path) = &opts.write_baseline {
        let text = hm_lint::render_baseline(&report);
        if let Err(e) = std::fs::write(path, &text) {
            eprintln!("hm-lint: writing baseline {}: {e}", path.display());
            return ExitCode::from(2);
        }
        eprintln!("hm-lint: wrote suppression baseline to {}", path.display());
    }

    let mut ratchet_broken = false;
    if let Some(path) = &opts.baseline {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!(
                    "hm-lint: reading baseline {}: {e}\n(bootstrap one with --write-baseline)",
                    path.display()
                );
                return ExitCode::from(2);
            }
        };
        let baseline = match hm_lint::parse_baseline(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("hm-lint: baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let violations = hm_lint::compare_baseline(&report, &baseline);
        for v in &violations {
            eprintln!("hm-lint: {v}");
        }
        ratchet_broken = !violations.is_empty();
    }

    let failing =
        report.diagnostics.iter().filter(|d| d.severity == Severity::Deny).count();
    if failing > 0 || ratchet_broken {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
