//! The rule registry: each rule is a trait object over the token stream.
//!
//! Rules encode this workspace's determinism and failure-semantics
//! invariants (DESIGN §11). They scan the significant (non-comment) token
//! stream of one file at a time; the engine handles test-region exclusion
//! plumbing, inline suppression, and severity policy.

use crate::engine::{Diagnostic, FileCtx, Severity};
use crate::lexer::{TokKind, Token};

/// One lint rule. Implementations push raw diagnostics; the engine applies
/// suppressions afterwards.
pub trait Rule {
    /// Stable kebab-case name, used in `lint: allow(<name>)` markers.
    fn name(&self) -> &'static str;
    /// One-line invariant statement for `--list-rules`.
    fn description(&self) -> &'static str;
    /// Default severity (promoted by `--deny warnings`).
    fn severity(&self) -> Severity;
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>);
}

/// The full rule set, in reporting order.
pub fn default_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NoUnauditedPanic),
        Box::new(NanUnsafeCmp),
        Box::new(WallClockOutsideTiming),
        Box::new(NondeterministicIteration),
        Box::new(FloatEnv),
    ]
}

fn diag(rule: &'static str, sev: Severity, ctx: &FileCtx<'_>, t: &Token, msg: String) -> Diagnostic {
    Diagnostic {
        rule,
        severity: sev,
        file: ctx.path.to_path_buf(),
        line: t.line,
        col: t.col,
        message: msg,
    }
}

// ---------------------------------------------------------------------------
// no-unaudited-panic
// ---------------------------------------------------------------------------

/// The optimizer survives evaluator crashes by design (DESIGN §8): failures
/// are routed through the [`EvalError`] taxonomy, not panics. A stray
/// `.unwrap()` in non-test code reintroduces exactly the crash class the
/// resilience layer exists to contain. Panics must either be removed or
/// carry a `lint: allow` with the reason they are unreachable.
pub struct NoUnauditedPanic;

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

impl Rule for NoUnauditedPanic {
    fn name(&self) -> &'static str {
        "no-unaudited-panic"
    }
    fn description(&self) -> &'static str {
        "non-test code must not unwrap/expect/panic without an audit reason (DESIGN \u{a7}8)"
    }
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        if ctx.file_is_test {
            return;
        }
        let src = ctx.src;
        for i in 0..ctx.sig.len() {
            let t = &ctx.tokens[ctx.sig[i]];
            if ctx.in_test_code(t.start) {
                continue;
            }
            // `.unwrap()` — exactly, so `.unwrap_or_else(…)` (the poisoned-
            // lock recovery idiom) never matches.
            if t.is_punct(src, '.') {
                let (m, paren) = (ctx.sig_tok(i + 1), ctx.sig_tok(i + 2));
                if let (Some(m), Some(p)) = (m, paren) {
                    if p.is_punct(src, '(') {
                        if m.is_ident(src, "unwrap")
                            && ctx.sig_tok(i + 3).is_some_and(|c| c.is_punct(src, ')'))
                        {
                            out.push(diag(self.name(), self.severity(), ctx, m,
                                "`.unwrap()` in non-test code; return an error, recover, or add `// lint: allow(no-unaudited-panic): <reason>`".into()));
                        } else if m.is_ident(src, "expect") {
                            out.push(diag(self.name(), self.severity(), ctx, m,
                                "`.expect(…)` in non-test code; return an error, recover, or add `// lint: allow(no-unaudited-panic): <reason>`".into()));
                        }
                    }
                }
            }
            // panic!/unreachable!/todo!/unimplemented!
            if t.kind == TokKind::Ident
                && PANIC_MACROS.contains(&t.text(src))
                && ctx.sig_tok(i + 1).is_some_and(|n| n.is_punct(src, '!'))
            {
                out.push(diag(self.name(), self.severity(), ctx, t,
                    format!("`{}!` in non-test code; route the failure through the error taxonomy or add `// lint: allow(no-unaudited-panic): <reason>`", t.text(src))));
            }
            // Indexing-free zones: `expr[…]` panics on out-of-bounds, so a
            // `lint: zone(no-indexing)` file bans it in favour of `.get()`.
            if t.is_punct(src, '[')
                && ctx.in_zone("no-indexing", t.line)
                && i > 0
                && ctx.sig_tok(i - 1).is_some_and(|p| {
                    p.kind == TokKind::Ident || p.is_punct(src, ')') || p.is_punct(src, ']')
                })
            {
                out.push(diag(self.name(), self.severity(), ctx, t,
                    "indexing in a `no-indexing` zone; use `.get()` and handle the miss".into()));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// nan-unsafe-cmp
// ---------------------------------------------------------------------------

/// `partial_cmp(..).unwrap()` comparators panic the moment a NaN reaches a
/// sort, and `unwrap_or(Equal)` variants silently give NaN an unspecified
/// position — both break reproducible ordering. Float comparators must be
/// total (`total_cmp` or a named total comparator such as
/// `randforest::feature_cmp`). Applies to test code too: a NaN-panicking
/// test comparator turns a diagnostic failure into a crash.
pub struct NanUnsafeCmp;

const SORTERS: &[&str] =
    &["sort_by", "sort_unstable_by", "min_by", "max_by", "binary_search_by"];

impl Rule for NanUnsafeCmp {
    fn name(&self) -> &'static str {
        "nan-unsafe-cmp"
    }
    fn description(&self) -> &'static str {
        "float comparators in sorts must be total: total_cmp, never partial_cmp (DESIGN \u{a7}8)"
    }
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        let src = ctx.src;
        for i in 0..ctx.sig.len() {
            let t = &ctx.tokens[ctx.sig[i]];
            if t.kind != TokKind::Ident || !SORTERS.contains(&t.text(src)) {
                continue;
            }
            let Some(open) = ctx.sig_tok(i + 1).filter(|p| p.is_punct(src, '(')).map(|_| i + 1)
            else {
                continue;
            };
            let close = ctx.matching_close(open, '(', ')').unwrap_or(ctx.sig.len() - 1);
            for j in open..=close {
                let inner = &ctx.tokens[ctx.sig[j]];
                if inner.is_ident(src, "partial_cmp") {
                    out.push(diag(self.name(), self.severity(), ctx, inner,
                        format!("`partial_cmp` inside `{}` — panics or loses ordering on NaN; use `total_cmp` (or a documented total comparator)", t.text(src))));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// wall-clock-outside-timing
// ---------------------------------------------------------------------------

/// Reproducibility (bit-identical resume, parallel==sequential parity)
/// requires that wall-clock never influences exploration outside the
/// designated timing paths: `slambench::measure` (the Timing-mode
/// measurement harness). Every other `Instant::now`/`SystemTime` use must
/// justify itself with a `lint: allow` stating why its reading can never
/// feed back into objectives, RNG, or journal records.
pub struct WallClockOutsideTiming;

/// Workspace-relative files where wall-clock acquisition is the point:
/// the Timing-mode measurement harness, and the service's deadline/
/// heartbeat clock (whose readings gate lease reassignment only — any
/// reply that does arrive carries deterministic values, so scheduling
/// jitter can never reach objectives, RNG, or journal records).
/// `crates/timing` is the third entry: the `hm-timing::Stopwatch` only
/// ever exposes durations (never instants), so pipeline stage timing can
/// go through it instead of carrying a per-call-site suppression.
const TIMING_MODULES: &[&str] = &[
    "crates/slambench/src/measure.rs",
    "crates/service/src/clock.rs",
    "crates/timing/src/lib.rs",
];

impl Rule for WallClockOutsideTiming {
    fn name(&self) -> &'static str {
        "wall-clock-outside-timing"
    }
    fn description(&self) -> &'static str {
        "Instant::now/SystemTime only in designated timing modules (DESIGN \u{a7}9)"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        if ctx.file_is_test || TIMING_MODULES.iter().any(|m| ctx.rel == *m) {
            return;
        }
        let src = ctx.src;
        for i in 0..ctx.sig.len() {
            let t = &ctx.tokens[ctx.sig[i]];
            if ctx.in_test_code(t.start) {
                continue;
            }
            if t.is_ident(src, "Instant")
                && ctx.sig_tok(i + 1).is_some_and(|c| c.is_punct(src, ':'))
                && ctx.sig_tok(i + 2).is_some_and(|c| c.is_punct(src, ':'))
                && ctx.sig_tok(i + 3).is_some_and(|n| n.is_ident(src, "now"))
            {
                out.push(diag(self.name(), self.severity(), ctx, t,
                    "`Instant::now` outside the timing modules; wall-clock must not reach objectives, RNG, or the journal (`lint: allow(wall-clock-outside-timing): <why it cannot>` if it provably does not)".into()));
            }
            if t.is_ident(src, "SystemTime") {
                out.push(diag(self.name(), self.severity(), ctx, t,
                    "`SystemTime` outside the timing modules; wall-clock must not reach objectives, RNG, or the journal".into()));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// nondeterministic-iteration
// ---------------------------------------------------------------------------

/// `HashMap`/`HashSet` iteration order is randomized per process, so any
/// iteration in the deterministic crates (`core`, `forest`) can leak
/// nondeterminism into RNG draw order, journal records, or forest
/// construction. Keyed lookup (`get`/`contains`/`insert`/`entry`) stays
/// legal. Detection is a two-pass heuristic: first bind identifiers whose
/// declaration mentions a hash container, then flag order-sensitive
/// operations on those identifiers.
pub struct NondeterministicIteration;

/// Crates whose results must be bit-reproducible.
const DETERMINISTIC_SCOPES: &[&str] = &["crates/core/src/", "crates/forest/src/"];
const ORDER_SENSITIVE: &[&str] =
    &["iter", "iter_mut", "keys", "values", "values_mut", "into_iter", "drain", "retain"];
/// Type-path tokens allowed between `name:` and the hash type. `Vec` is
/// deliberately absent: iterating a `Vec<HashMap<…>>` is order-stable.
const TYPE_NOISE: &[&str] =
    &["&", "mut", "<", "std", "collections", "sync", "Mutex", "RwLock", "Arc", "Option"];

impl Rule for NondeterministicIteration {
    fn name(&self) -> &'static str {
        "nondeterministic-iteration"
    }
    fn description(&self) -> &'static str {
        "no HashMap/HashSet iteration in crates/core or crates/forest (DESIGN \u{a7}10)"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        if ctx.file_is_test || !DETERMINISTIC_SCOPES.iter().any(|s| ctx.rel.starts_with(s)) {
            return;
        }
        let src = ctx.src;
        // Pass A: identifiers bound to hash containers anywhere in the file
        // (field declarations, fn params, and let-bindings).
        let mut bound: Vec<&str> = Vec::new();
        for i in 0..ctx.sig.len() {
            let t = &ctx.tokens[ctx.sig[i]];
            if !(t.is_ident(src, "HashMap") || t.is_ident(src, "HashSet")) {
                continue;
            }
            // Walk back over type-path noise to a type ascription `name :`.
            // A lone `:` is an ascription; `::` is a path separator (so
            // `use std::collections::HashMap;` binds nothing).
            let mut j = i;
            let mut saw_ascription = false;
            while j > 0 {
                let p = &ctx.tokens[ctx.sig[j - 1]];
                let txt = p.text(src);
                if p.is_punct(src, ':') {
                    if j >= 2 && ctx.tokens[ctx.sig[j - 2]].is_punct(src, ':') {
                        j -= 2;
                        continue;
                    }
                    saw_ascription = true;
                    j -= 1;
                    break;
                }
                if TYPE_NOISE.contains(&txt) {
                    j -= 1;
                    continue;
                }
                break;
            }
            if saw_ascription && j >= 1 {
                let name = &ctx.tokens[ctx.sig[j - 1]];
                if name.kind == TokKind::Ident {
                    bound.push(name.text(src));
                }
            }
            // `let [mut] name … = …HashMap::new()` — scan back to the
            // nearest `let` in the current statement.
            let mut k = i;
            let mut steps = 0;
            while k > 0 && steps < 16 {
                let p = &ctx.tokens[ctx.sig[k - 1]];
                if p.is_punct(src, ';') || p.is_punct(src, '{') || p.is_punct(src, '}') {
                    break;
                }
                if p.is_ident(src, "let") {
                    if let Some(mut n) = ctx.sig_tok(k) {
                        if n.is_ident(src, "mut") {
                            if let Some(n2) = ctx.sig_tok(k + 1) {
                                n = n2;
                            }
                        }
                        if n.kind == TokKind::Ident {
                            bound.push(n.text(src));
                        }
                    }
                    break;
                }
                k -= 1;
                steps += 1;
            }
        }
        if bound.is_empty() {
            return;
        }
        bound.sort_unstable();
        bound.dedup();

        // Pass B: order-sensitive uses of bound identifiers.
        for i in 0..ctx.sig.len() {
            let t = &ctx.tokens[ctx.sig[i]];
            if ctx.in_test_code(t.start) || t.kind != TokKind::Ident {
                continue;
            }
            let name = t.text(src);
            if !bound.contains(&name) {
                continue;
            }
            // `name.iter()` and friends.
            if ctx.sig_tok(i + 1).is_some_and(|d| d.is_punct(src, '.')) {
                if let Some(m) = ctx.sig_tok(i + 2) {
                    if m.kind == TokKind::Ident && ORDER_SENSITIVE.contains(&m.text(src)) {
                        out.push(diag(self.name(), self.severity(), ctx, m,
                            format!("`{name}.{}()` iterates a hash container in a deterministic crate; iteration order is per-process random — collect into a sorted/indexed structure instead", m.text(src))));
                    }
                }
            }
            // `for x in [&[mut]] name { … }`.
            if i >= 1 {
                let mut j = i - 1;
                let mut saw_ref = false;
                while j > 0 {
                    let p = &ctx.tokens[ctx.sig[j]];
                    if p.is_punct(src, '&') || p.is_ident(src, "mut") {
                        saw_ref = true;
                        j -= 1;
                    } else {
                        break;
                    }
                }
                let _ = saw_ref;
                if ctx.tokens[ctx.sig[j]].is_ident(src, "in")
                    && ctx.sig_tok(i + 1).is_some_and(|n| n.is_punct(src, '{'))
                {
                    out.push(diag(self.name(), self.severity(), ctx, t,
                        format!("`for … in {name}` iterates a hash container in a deterministic crate; iteration order is per-process random", )));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// float-env
// ---------------------------------------------------------------------------

/// Journal records and result fingerprints must round-trip floats exactly —
/// NaN payloads included — which means `to_bits`/`from_bits` hex, never
/// decimal formatting or parsing (DESIGN §10). Applies inside
/// `lint: zone(float-exact)` files: flags lossy format specs (`{:.N}`,
/// `{:e}`) in format-like macros and `parse::<f64>`/`f64::from_str`.
pub struct FloatEnv;

const FORMAT_MACROS: &[&str] =
    &["format", "write", "writeln", "print", "println", "eprint", "eprintln"];

impl Rule for FloatEnv {
    fn name(&self) -> &'static str {
        "float-env"
    }
    fn description(&self) -> &'static str {
        "bit-exact paths (journal/fingerprint) must route floats through to_bits hex (DESIGN \u{a7}10)"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        if ctx.file_is_test || ctx.zones.iter().all(|z| z.name != "float-exact") {
            return;
        }
        let src = ctx.src;
        for i in 0..ctx.sig.len() {
            let t = &ctx.tokens[ctx.sig[i]];
            if ctx.in_test_code(t.start) || !ctx.in_zone("float-exact", t.line) {
                continue;
            }
            // Lossy specs in the format string of a format-like macro.
            if t.kind == TokKind::Ident
                && FORMAT_MACROS.contains(&t.text(src))
                && ctx.sig_tok(i + 1).is_some_and(|b| b.is_punct(src, '!'))
            {
                if let Some(open) = ctx.sig_tok(i + 2).filter(|p| p.is_punct(src, '(')).map(|_| i + 2)
                {
                    let close = ctx.matching_close(open, '(', ')').unwrap_or(ctx.sig.len() - 1);
                    if let Some(fmt) = (open..=close)
                        .map(|j| &ctx.tokens[ctx.sig[j]])
                        .find(|tk| tk.kind == TokKind::Str)
                    {
                        for spec in lossy_float_specs(fmt.text(src)) {
                            out.push(diag(self.name(), self.severity(), ctx, fmt,
                                format!("lossy float format `{{{spec}}}` in a float-exact zone; write bits instead: `{{:016x}}` of `.to_bits()`")));
                        }
                    }
                }
            }
            // parse::<f64>() / f64::from_str — decimal decode loses NaN
            // payloads and depends on the formatter that produced the text.
            if t.is_ident(src, "parse")
                && ctx.sig_tok(i + 3).is_some_and(|g| g.is_punct(src, '<'))
                && ctx.sig_tok(i + 4)
                    .is_some_and(|f| f.is_ident(src, "f64") || f.is_ident(src, "f32"))
            {
                out.push(diag(self.name(), self.severity(), ctx, t,
                    "decimal float parse in a float-exact zone; decode via `f64::from_bits(u64::from_str_radix(…, 16))`".into()));
            }
            if (t.is_ident(src, "f64") || t.is_ident(src, "f32"))
                && ctx.sig_tok(i + 1).is_some_and(|c| c.is_punct(src, ':'))
                && ctx.sig_tok(i + 2).is_some_and(|c| c.is_punct(src, ':'))
                && ctx.sig_tok(i + 3).is_some_and(|n| n.is_ident(src, "from_str"))
            {
                out.push(diag(self.name(), self.severity(), ctx, t,
                    "decimal float parse in a float-exact zone; decode via `from_bits`".into()));
            }
        }
    }
}

/// Extract format specs (text between `{` and `}`, `{{` escapes skipped)
/// that format floats lossily: a precision (`.`) or scientific (`e`/`E`)
/// spec. Returns the offending spec bodies.
fn lossy_float_specs(fmt_literal: &str) -> Vec<String> {
    let mut out = Vec::new();
    let b = fmt_literal.as_bytes();
    let mut i = 0usize;
    while i < b.len() {
        if b[i] == b'{' {
            if b.get(i + 1) == Some(&b'{') {
                i += 2;
                continue;
            }
            let Some(end) = fmt_literal[i + 1..].find('}').map(|e| i + 1 + e) else {
                break;
            };
            let spec = &fmt_literal[i + 1..end];
            if let Some((_, flags)) = spec.split_once(':') {
                let lossy_precision = flags.contains('.');
                let lossy_sci = matches!(flags.as_bytes().last(), Some(b'e' | b'E'));
                if lossy_precision || lossy_sci {
                    out.push(spec.to_string());
                }
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::check_file;
    use std::path::Path;

    fn diags(rel: &str, src: &str) -> Vec<Diagnostic> {
        check_file(Path::new(rel), rel, src, &default_rules(), false).diagnostics
    }

    #[test]
    fn nan_unsafe_cmp_fires_only_inside_sorters() {
        let src = "fn f(v: &mut Vec<f64>) {\n  v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n  let _ = 1.0f64.partial_cmp(&2.0);\n}\n";
        let d = diags("crates/x/src/a.rs", src);
        assert_eq!(d.iter().filter(|d| d.rule == "nan-unsafe-cmp").count(), 1);
    }

    #[test]
    fn total_cmp_is_clean() {
        let src = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.total_cmp(b)); }\n";
        assert!(diags("crates/x/src/a.rs", src).iter().all(|d| d.rule != "nan-unsafe-cmp"));
    }

    #[test]
    fn wall_clock_allowed_in_measure_module() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert!(diags("crates/slambench/src/measure.rs", src).is_empty());
        assert!(diags("crates/service/src/clock.rs", src).is_empty());
        assert!(!diags("crates/core/src/optimizer.rs", src).is_empty());
        assert!(!diags("crates/service/src/coordinator.rs", src).is_empty());
    }

    #[test]
    fn hash_iteration_flagged_in_core_only() {
        let src = "use std::collections::HashMap;\nstruct S { m: HashMap<u32, u32> }\nimpl S {\n  fn f(&self) -> Vec<u32> { self.m.keys().copied().collect() }\n}\n";
        assert!(diags("crates/core/src/x.rs", src)
            .iter()
            .any(|d| d.rule == "nondeterministic-iteration"));
        assert!(diags("crates/slambench/src/x.rs", src)
            .iter()
            .all(|d| d.rule != "nondeterministic-iteration"));
    }

    #[test]
    fn keyed_lookup_stays_legal() {
        let src = "use std::collections::HashSet;\nfn f(s: &HashSet<u64>) -> bool { s.contains(&3) && s.len() > 0 }\n";
        assert!(diags("crates/core/src/x.rs", src)
            .iter()
            .all(|d| d.rule != "nondeterministic-iteration"));
    }

    #[test]
    fn float_env_needs_zone() {
        let with_zone = "// lint: zone(float-exact): journal records are bit-exact\nfn f(v: f64) -> String { format!(\"{v:.6}\") }\n";
        let without = "fn f(v: f64) -> String { format!(\"{v:.6}\") }\n";
        assert!(diags("crates/core/src/journal.rs", with_zone)
            .iter()
            .any(|d| d.rule == "float-env"));
        assert!(diags("crates/core/src/journal.rs", without)
            .iter()
            .all(|d| d.rule != "float-env"));
    }

    #[test]
    fn float_env_accepts_bit_hex() {
        let src = "// lint: zone(float-exact): bit-exact\nfn f(v: f64) -> String { format!(\"{:016x}\", v.to_bits()) }\n";
        assert!(diags("crates/core/src/journal.rs", src).iter().all(|d| d.rule != "float-env"));
    }

    #[test]
    fn indexing_zone_tightens_panic_rule() {
        let src = "// lint: zone(no-indexing): hot loop must be panic-free\nfn f(v: &[u32], i: usize) -> u32 { v[i] }\n";
        assert!(diags("crates/x/src/a.rs", src)
            .iter()
            .any(|d| d.rule == "no-unaudited-panic" && d.message.contains("indexing")));
        let attr = "// lint: zone(no-indexing): hot loop\n#[derive(Clone)]\nstruct S;\n";
        assert!(diags("crates/x/src/a.rs", attr).is_empty(), "attribute brackets are not indexing");
    }
}
