//! The rule registry: each rule is a trait object over the token stream.
//!
//! Rules encode this workspace's determinism and failure-semantics
//! invariants (DESIGN §11). They scan the significant (non-comment) token
//! stream of one file at a time; the engine handles test-region exclusion
//! plumbing, inline suppression, and severity policy.

use crate::engine::{Diagnostic, FileCtx, Severity};
use crate::flow;
use crate::lexer::{TokKind, Token};

/// One lint rule. Implementations push raw diagnostics; the engine applies
/// suppressions afterwards.
pub trait Rule {
    /// Stable kebab-case name, used in `lint: allow(<name>)` markers.
    fn name(&self) -> &'static str;
    /// One-line invariant statement for `--list-rules`.
    fn description(&self) -> &'static str;
    /// Default severity (promoted by `--deny warnings`).
    fn severity(&self) -> Severity;
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>);
}

/// The full rule set, in reporting order.
pub fn default_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NoUnauditedPanic),
        Box::new(NanUnsafeCmp),
        Box::new(WallClockOutsideTiming),
        Box::new(NondeterministicIteration),
        Box::new(FloatEnv),
        Box::new(LockOrder),
        Box::new(BlockingWithoutDeadline),
        Box::new(WireUncheckedArith),
    ]
}

fn diag(rule: &'static str, sev: Severity, ctx: &FileCtx<'_>, t: &Token, msg: String) -> Diagnostic {
    Diagnostic {
        rule,
        severity: sev,
        file: ctx.path.to_path_buf(),
        line: t.line,
        col: t.col,
        message: msg,
    }
}

// ---------------------------------------------------------------------------
// no-unaudited-panic
// ---------------------------------------------------------------------------

/// The optimizer survives evaluator crashes by design (DESIGN §8): failures
/// are routed through the [`EvalError`] taxonomy, not panics. A stray
/// `.unwrap()` in non-test code reintroduces exactly the crash class the
/// resilience layer exists to contain. Panics must either be removed or
/// carry a `lint: allow` with the reason they are unreachable.
pub struct NoUnauditedPanic;

const PANIC_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

impl Rule for NoUnauditedPanic {
    fn name(&self) -> &'static str {
        "no-unaudited-panic"
    }
    fn description(&self) -> &'static str {
        "non-test code must not unwrap/expect/panic without an audit reason (DESIGN \u{a7}8)"
    }
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        if ctx.file_is_test {
            return;
        }
        let src = ctx.src;
        for i in 0..ctx.sig.len() {
            let t = &ctx.tokens[ctx.sig[i]];
            if ctx.in_test_code(t.start) {
                continue;
            }
            // `.unwrap()` — exactly, so `.unwrap_or_else(…)` (the poisoned-
            // lock recovery idiom) never matches.
            if t.is_punct(src, '.') {
                let (m, paren) = (ctx.sig_tok(i + 1), ctx.sig_tok(i + 2));
                if let (Some(m), Some(p)) = (m, paren) {
                    if p.is_punct(src, '(') {
                        if m.is_ident(src, "unwrap")
                            && ctx.sig_tok(i + 3).is_some_and(|c| c.is_punct(src, ')'))
                        {
                            out.push(diag(self.name(), self.severity(), ctx, m,
                                "`.unwrap()` in non-test code; return an error, recover, or add `// lint: allow(no-unaudited-panic): <reason>`".into()));
                        } else if m.is_ident(src, "expect") {
                            out.push(diag(self.name(), self.severity(), ctx, m,
                                "`.expect(…)` in non-test code; return an error, recover, or add `// lint: allow(no-unaudited-panic): <reason>`".into()));
                        }
                    }
                }
            }
            // panic!/unreachable!/todo!/unimplemented!
            if t.kind == TokKind::Ident
                && PANIC_MACROS.contains(&t.text(src))
                && ctx.sig_tok(i + 1).is_some_and(|n| n.is_punct(src, '!'))
            {
                out.push(diag(self.name(), self.severity(), ctx, t,
                    format!("`{}!` in non-test code; route the failure through the error taxonomy or add `// lint: allow(no-unaudited-panic): <reason>`", t.text(src))));
            }
            // Indexing-free zones: `expr[…]` panics on out-of-bounds, so a
            // `lint: zone(no-indexing)` file bans it in favour of `.get()`.
            if t.is_punct(src, '[')
                && ctx.in_zone("no-indexing", t.line)
                && i > 0
                && ctx.sig_tok(i - 1).is_some_and(|p| {
                    p.kind == TokKind::Ident || p.is_punct(src, ')') || p.is_punct(src, ']')
                })
            {
                out.push(diag(self.name(), self.severity(), ctx, t,
                    "indexing in a `no-indexing` zone; use `.get()` and handle the miss".into()));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// nan-unsafe-cmp
// ---------------------------------------------------------------------------

/// `partial_cmp(..).unwrap()` comparators panic the moment a NaN reaches a
/// sort, and `unwrap_or(Equal)` variants silently give NaN an unspecified
/// position — both break reproducible ordering. Float comparators must be
/// total (`total_cmp` or a named total comparator such as
/// `randforest::feature_cmp`). Applies to test code too: a NaN-panicking
/// test comparator turns a diagnostic failure into a crash.
pub struct NanUnsafeCmp;

const SORTERS: &[&str] =
    &["sort_by", "sort_unstable_by", "min_by", "max_by", "binary_search_by"];

impl Rule for NanUnsafeCmp {
    fn name(&self) -> &'static str {
        "nan-unsafe-cmp"
    }
    fn description(&self) -> &'static str {
        "float comparators in sorts must be total: total_cmp, never partial_cmp (DESIGN \u{a7}8)"
    }
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        let src = ctx.src;
        for i in 0..ctx.sig.len() {
            let t = &ctx.tokens[ctx.sig[i]];
            if t.kind != TokKind::Ident || !SORTERS.contains(&t.text(src)) {
                continue;
            }
            let Some(open) = ctx.sig_tok(i + 1).filter(|p| p.is_punct(src, '(')).map(|_| i + 1)
            else {
                continue;
            };
            let close = ctx.matching_close(open, '(', ')').unwrap_or(ctx.sig.len() - 1);
            for j in open..=close {
                let inner = &ctx.tokens[ctx.sig[j]];
                if inner.is_ident(src, "partial_cmp") {
                    out.push(diag(self.name(), self.severity(), ctx, inner,
                        format!("`partial_cmp` inside `{}` — panics or loses ordering on NaN; use `total_cmp` (or a documented total comparator)", t.text(src))));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// wall-clock-outside-timing
// ---------------------------------------------------------------------------

/// Reproducibility (bit-identical resume, parallel==sequential parity)
/// requires that wall-clock never influences exploration outside the
/// designated timing paths: `slambench::measure` (the Timing-mode
/// measurement harness). Every other `Instant::now`/`SystemTime` use must
/// justify itself with a `lint: allow` stating why its reading can never
/// feed back into objectives, RNG, or journal records.
pub struct WallClockOutsideTiming;

/// Workspace-relative files where wall-clock acquisition is the point:
/// the Timing-mode measurement harness, and the service's deadline/
/// heartbeat clock (whose readings gate lease reassignment only — any
/// reply that does arrive carries deterministic values, so scheduling
/// jitter can never reach objectives, RNG, or journal records).
/// `crates/timing` is the third entry: the `hm-timing::Stopwatch` only
/// ever exposes durations (never instants), so pipeline stage timing can
/// go through it instead of carrying a per-call-site suppression.
const TIMING_MODULES: &[&str] = &[
    "crates/slambench/src/measure.rs",
    "crates/service/src/clock.rs",
    "crates/timing/src/lib.rs",
];

impl Rule for WallClockOutsideTiming {
    fn name(&self) -> &'static str {
        "wall-clock-outside-timing"
    }
    fn description(&self) -> &'static str {
        "Instant::now/SystemTime only in designated timing modules (DESIGN \u{a7}9)"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        if ctx.file_is_test || TIMING_MODULES.iter().any(|m| ctx.rel == *m) {
            return;
        }
        let src = ctx.src;
        for i in 0..ctx.sig.len() {
            let t = &ctx.tokens[ctx.sig[i]];
            if ctx.in_test_code(t.start) {
                continue;
            }
            if t.is_ident(src, "Instant")
                && ctx.sig_tok(i + 1).is_some_and(|c| c.is_punct(src, ':'))
                && ctx.sig_tok(i + 2).is_some_and(|c| c.is_punct(src, ':'))
                && ctx.sig_tok(i + 3).is_some_and(|n| n.is_ident(src, "now"))
            {
                out.push(diag(self.name(), self.severity(), ctx, t,
                    "`Instant::now` outside the timing modules; wall-clock must not reach objectives, RNG, or the journal (`lint: allow(wall-clock-outside-timing): <why it cannot>` if it provably does not)".into()));
            }
            if t.is_ident(src, "SystemTime") {
                out.push(diag(self.name(), self.severity(), ctx, t,
                    "`SystemTime` outside the timing modules; wall-clock must not reach objectives, RNG, or the journal".into()));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// nondeterministic-iteration
// ---------------------------------------------------------------------------

/// `HashMap`/`HashSet` iteration order is randomized per process, so any
/// iteration in the deterministic crates (`core`, `forest`) can leak
/// nondeterminism into RNG draw order, journal records, or forest
/// construction. Keyed lookup (`get`/`contains`/`insert`/`entry`) stays
/// legal. Detection is a two-pass heuristic: first bind identifiers whose
/// declaration mentions a hash container, then flag order-sensitive
/// operations on those identifiers.
pub struct NondeterministicIteration;

/// Crates whose results must be bit-reproducible.
const DETERMINISTIC_SCOPES: &[&str] = &["crates/core/src/", "crates/forest/src/"];
const ORDER_SENSITIVE: &[&str] =
    &["iter", "iter_mut", "keys", "values", "values_mut", "into_iter", "drain", "retain"];
/// Type-path tokens allowed between `name:` and the hash type. `Vec` is
/// deliberately absent: iterating a `Vec<HashMap<…>>` is order-stable.
const TYPE_NOISE: &[&str] =
    &["&", "mut", "<", "std", "collections", "sync", "Mutex", "RwLock", "Arc", "Option"];

impl Rule for NondeterministicIteration {
    fn name(&self) -> &'static str {
        "nondeterministic-iteration"
    }
    fn description(&self) -> &'static str {
        "no HashMap/HashSet iteration in crates/core or crates/forest (DESIGN \u{a7}10)"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        if ctx.file_is_test || !DETERMINISTIC_SCOPES.iter().any(|s| ctx.rel.starts_with(s)) {
            return;
        }
        let src = ctx.src;
        // Pass A: identifiers bound to hash containers anywhere in the file
        // (field declarations, fn params, and let-bindings).
        let mut bound: Vec<&str> = Vec::new();
        for i in 0..ctx.sig.len() {
            let t = &ctx.tokens[ctx.sig[i]];
            if !(t.is_ident(src, "HashMap") || t.is_ident(src, "HashSet")) {
                continue;
            }
            // Walk back over type-path noise to a type ascription `name :`.
            // A lone `:` is an ascription; `::` is a path separator (so
            // `use std::collections::HashMap;` binds nothing).
            let mut j = i;
            let mut saw_ascription = false;
            while j > 0 {
                let p = &ctx.tokens[ctx.sig[j - 1]];
                let txt = p.text(src);
                if p.is_punct(src, ':') {
                    if j >= 2 && ctx.tokens[ctx.sig[j - 2]].is_punct(src, ':') {
                        j -= 2;
                        continue;
                    }
                    saw_ascription = true;
                    j -= 1;
                    break;
                }
                if TYPE_NOISE.contains(&txt) {
                    j -= 1;
                    continue;
                }
                break;
            }
            if saw_ascription && j >= 1 {
                let name = &ctx.tokens[ctx.sig[j - 1]];
                if name.kind == TokKind::Ident {
                    bound.push(name.text(src));
                }
            }
            // `let [mut] name … = …HashMap::new()` — scan back to the
            // nearest `let` in the current statement.
            let mut k = i;
            let mut steps = 0;
            while k > 0 && steps < 16 {
                let p = &ctx.tokens[ctx.sig[k - 1]];
                if p.is_punct(src, ';') || p.is_punct(src, '{') || p.is_punct(src, '}') {
                    break;
                }
                if p.is_ident(src, "let") {
                    if let Some(mut n) = ctx.sig_tok(k) {
                        if n.is_ident(src, "mut") {
                            if let Some(n2) = ctx.sig_tok(k + 1) {
                                n = n2;
                            }
                        }
                        if n.kind == TokKind::Ident {
                            bound.push(n.text(src));
                        }
                    }
                    break;
                }
                k -= 1;
                steps += 1;
            }
        }
        if bound.is_empty() {
            return;
        }
        bound.sort_unstable();
        bound.dedup();

        // Pass B: order-sensitive uses of bound identifiers.
        for i in 0..ctx.sig.len() {
            let t = &ctx.tokens[ctx.sig[i]];
            if ctx.in_test_code(t.start) || t.kind != TokKind::Ident {
                continue;
            }
            let name = t.text(src);
            if !bound.contains(&name) {
                continue;
            }
            // `name.iter()` and friends.
            if ctx.sig_tok(i + 1).is_some_and(|d| d.is_punct(src, '.')) {
                if let Some(m) = ctx.sig_tok(i + 2) {
                    if m.kind == TokKind::Ident && ORDER_SENSITIVE.contains(&m.text(src)) {
                        out.push(diag(self.name(), self.severity(), ctx, m,
                            format!("`{name}.{}()` iterates a hash container in a deterministic crate; iteration order is per-process random — collect into a sorted/indexed structure instead", m.text(src))));
                    }
                }
            }
            // `for x in [&[mut]] name { … }`.
            if i >= 1 {
                let mut j = i - 1;
                let mut saw_ref = false;
                while j > 0 {
                    let p = &ctx.tokens[ctx.sig[j]];
                    if p.is_punct(src, '&') || p.is_ident(src, "mut") {
                        saw_ref = true;
                        j -= 1;
                    } else {
                        break;
                    }
                }
                let _ = saw_ref;
                if ctx.tokens[ctx.sig[j]].is_ident(src, "in")
                    && ctx.sig_tok(i + 1).is_some_and(|n| n.is_punct(src, '{'))
                {
                    out.push(diag(self.name(), self.severity(), ctx, t,
                        format!("`for … in {name}` iterates a hash container in a deterministic crate; iteration order is per-process random", )));
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// float-env
// ---------------------------------------------------------------------------

/// Journal records and result fingerprints must round-trip floats exactly —
/// NaN payloads included — which means `to_bits`/`from_bits` hex, never
/// decimal formatting or parsing (DESIGN §10). Applies inside
/// `lint: zone(float-exact)` files: flags lossy format specs (`{:.N}`,
/// `{:e}`) in format-like macros and `parse::<f64>`/`f64::from_str`.
pub struct FloatEnv;

const FORMAT_MACROS: &[&str] =
    &["format", "write", "writeln", "print", "println", "eprint", "eprintln"];

impl Rule for FloatEnv {
    fn name(&self) -> &'static str {
        "float-env"
    }
    fn description(&self) -> &'static str {
        "bit-exact paths (journal/fingerprint) must route floats through to_bits hex (DESIGN \u{a7}10)"
    }
    fn severity(&self) -> Severity {
        Severity::Warn
    }
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        if ctx.file_is_test || ctx.zones.iter().all(|z| z.name != "float-exact") {
            return;
        }
        let src = ctx.src;
        for i in 0..ctx.sig.len() {
            let t = &ctx.tokens[ctx.sig[i]];
            if ctx.in_test_code(t.start) || !ctx.in_zone("float-exact", t.line) {
                continue;
            }
            // Lossy specs in the format string of a format-like macro.
            if t.kind == TokKind::Ident
                && FORMAT_MACROS.contains(&t.text(src))
                && ctx.sig_tok(i + 1).is_some_and(|b| b.is_punct(src, '!'))
            {
                if let Some(open) = ctx.sig_tok(i + 2).filter(|p| p.is_punct(src, '(')).map(|_| i + 2)
                {
                    let close = ctx.matching_close(open, '(', ')').unwrap_or(ctx.sig.len() - 1);
                    if let Some(fmt) = (open..=close)
                        .map(|j| &ctx.tokens[ctx.sig[j]])
                        .find(|tk| tk.kind == TokKind::Str)
                    {
                        for spec in lossy_float_specs(fmt.text(src)) {
                            out.push(diag(self.name(), self.severity(), ctx, fmt,
                                format!("lossy float format `{{{spec}}}` in a float-exact zone; write bits instead: `{{:016x}}` of `.to_bits()`")));
                        }
                    }
                }
            }
            // parse::<f64>() / f64::from_str — decimal decode loses NaN
            // payloads and depends on the formatter that produced the text.
            if t.is_ident(src, "parse")
                && ctx.sig_tok(i + 3).is_some_and(|g| g.is_punct(src, '<'))
                && ctx.sig_tok(i + 4)
                    .is_some_and(|f| f.is_ident(src, "f64") || f.is_ident(src, "f32"))
            {
                out.push(diag(self.name(), self.severity(), ctx, t,
                    "decimal float parse in a float-exact zone; decode via `f64::from_bits(u64::from_str_radix(…, 16))`".into()));
            }
            if (t.is_ident(src, "f64") || t.is_ident(src, "f32"))
                && ctx.sig_tok(i + 1).is_some_and(|c| c.is_punct(src, ':'))
                && ctx.sig_tok(i + 2).is_some_and(|c| c.is_punct(src, ':'))
                && ctx.sig_tok(i + 3).is_some_and(|n| n.is_ident(src, "from_str"))
            {
                out.push(diag(self.name(), self.severity(), ctx, t,
                    "decimal float parse in a float-exact zone; decode via `from_bits`".into()));
            }
        }
    }
}

// ---------------------------------------------------------------------------
// lock-order
// ---------------------------------------------------------------------------

/// The service layer's liveness story assumes two things about its locks:
/// acquisition order is globally consistent (no deadlock cycles), and no
/// thread parks indefinitely while holding a guard (a blocked guard-holder
/// stalls every contender — in the coordinator that freezes the heartbeat
/// sweep itself). This rule builds the Mutex acquisition graph from the
/// whole workspace (`flow::build_index`) and flags (a) every edge on a
/// cycle and (b) unbounded blocking calls made while a guard is lexically
/// live. Bounded waits (`recv_timeout`, `wait_timeout`, `try_wait`) and
/// `Condvar::wait(guard)` — which releases the lock while parked — stay
/// legal, as do plain writes (`write_all` under the `SharedWriter` sink
/// lock is the atomic-frame design; write-side deadlines are
/// `blocking-without-deadline`'s jurisdiction).
pub struct LockOrder;

/// Calls that park the thread with no bound regardless of arguments.
const BLOCKING_ANY_ARGS: &[&str] =
    &["sleep", "read_exact", "read_to_end", "read_line", "read_to_string", "accept", "park"];
/// Calls that only block unboundedly in their no-argument form:
/// `child.wait()` / `rx.recv()` / `handle.join()` vs `condvar.wait(guard)`.
const BLOCKING_EMPTY_ARGS: &[&str] = &["wait", "recv", "join", "read"];

impl Rule for LockOrder {
    fn name(&self) -> &'static str {
        "lock-order"
    }
    fn description(&self) -> &'static str {
        "no lock acquisition cycles; no unbounded blocking while a guard is live (DESIGN \u{a7}16)"
    }
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        if ctx.file_is_test {
            return;
        }
        // (a) Cycle edges located in this file (the graph is workspace-wide).
        for e in &ctx.index.cycle_edges {
            if e.rel != ctx.rel {
                continue;
            }
            out.push(Diagnostic {
                rule: self.name(),
                severity: self.severity(),
                file: ctx.path.to_path_buf(),
                line: e.line,
                col: e.col,
                message: format!(
                    "lock acquisition order cycle: `{}` is held here while `{}` is taken, and the reverse order exists elsewhere in the workspace — pick one global order",
                    e.from, e.to
                ),
            });
        }
        // (b) Unbounded blocking calls inside a live guard span.
        let src = ctx.src;
        for fn_id in ctx.tree.fn_scopes() {
            let scope = &ctx.tree.scopes[fn_id];
            let Some(open_tok) = ctx.sig_tok(scope.open_sig) else { continue };
            if ctx.in_test_code(open_tok.start) {
                continue;
            }
            for g in flow::guard_spans(src, ctx.tokens, ctx.sig, ctx.tree, fn_id) {
                for c in
                    flow::call_sites(src, ctx.tokens, ctx.sig, g.start_sig, g.end_sig)
                {
                    let blocking = BLOCKING_ANY_ARGS.contains(&c.name.as_str())
                        || (c.args_empty && BLOCKING_EMPTY_ARGS.contains(&c.name.as_str()));
                    if !blocking {
                        continue;
                    }
                    out.push(Diagnostic {
                        rule: self.name(),
                        severity: self.severity(),
                        file: ctx.path.to_path_buf(),
                        line: c.line,
                        col: c.col,
                        message: format!(
                            "`{}` while the `{}` guard is live — an unbounded block with a lock held stalls every contender; drop the guard first or use a bounded variant (`recv_timeout`, `wait_timeout`, `try_wait`)",
                            c.name, g.lock_id
                        ),
                    });
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// blocking-without-deadline
// ---------------------------------------------------------------------------

/// Heartbeat reaping only works if the sweep keeps sweeping: any socket or
/// stdio read/write reachable from the coordinator sweep or a worker serve
/// loop must carry a read/write deadline or be owned by the heartbeat
/// clock — a bare blocking call anywhere in that call graph lets one silent
/// peer freeze lease scheduling for everyone. Reachability is the
/// cross-file fixpoint from [`flow::LOOP_ROOTS`]; a reachable fn passes if
/// it arms a deadline itself (`set_read_timeout(Some…)`,
/// `set_write_timeout_ms`, `connect_timeout`, …) or is registered in
/// [`CLOCK_BOUNDED`] — the audited sites whose liveness the reap path
/// owns (severing a stream wakes its blocked reader).
pub struct BlockingWithoutDeadline;

/// Audited `(file, fn)` pairs whose raw I/O is bounded by the service
/// design rather than a lexical deadline:
///
/// - `wire.rs::next_frame` — the single raw-read pump. It is
///   deadline-*transparent*: timeouts surface as resumable
///   `FrameError::Timeout`, so the binding policy lives with whoever armed
///   (or deliberately did not arm) the stream, and reaping severs the fd
///   to wake it.
/// - `wire.rs::send_raw` — the atomic-frame write under the sink lock.
///   Socket sinks carry a write deadline from `SocketTransport::connect` /
///   `attach_connection`; stdio sinks are drained by dedicated reader
///   threads on the peer.
/// - `coordinator.rs::write_frame` — lease grants over links. Socket links
///   get a write deadline armed at attach; stdio frames are far smaller
///   than the pipe buffer and each worker holds at most one outstanding
///   lease, so a frozen child cannot absorb enough frames to fill it.
/// - `worker.rs::send` — worker→coordinator results on stdout; the
///   coordinator's per-worker reader thread always drains, and worker
///   death is the coordinator's problem, not the worker's.
/// - `worker.rs::try_handshake` — the hello write rides the stream that
///   `SocketTransport::connect` just armed with tick-length read *and*
///   write timeouts; the welcome loop counts ticks and gives up at ~2 s.
const CLOCK_BOUNDED: &[(&str, &str)] = &[
    ("crates/service/src/wire.rs", "next_frame"),
    ("crates/service/src/wire.rs", "send_raw"),
    ("crates/service/src/coordinator.rs", "write_frame"),
    ("crates/service/src/worker.rs", "send"),
    ("crates/service/src/worker.rs", "try_handshake"),
];

/// Raw stream I/O that blocks until the peer acts.
const BARE_IO: &[&str] = &[
    "read", "read_exact", "read_to_end", "read_line", "read_to_string", "write_all",
    "write_fmt", "flush", "accept",
];

impl Rule for BlockingWithoutDeadline {
    fn name(&self) -> &'static str {
        "blocking-without-deadline"
    }
    fn description(&self) -> &'static str {
        "I/O reachable from the coordinator sweep / worker loop needs a deadline or the heartbeat clock (DESIGN \u{a7}16)"
    }
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        if ctx.file_is_test || !flow::in_service_scope(&ctx.rel) {
            return;
        }
        let src = ctx.src;
        for fn_id in ctx.tree.fn_scopes() {
            let scope = &ctx.tree.scopes[fn_id];
            let key = (ctx.rel.clone(), scope.name.clone());
            if !ctx.index.reachable.contains(&key) {
                continue;
            }
            if CLOCK_BOUNDED.iter().any(|(f, n)| *f == key.0 && *n == key.1) {
                continue;
            }
            let Some(open_tok) = ctx.sig_tok(scope.open_sig) else { continue };
            if ctx.in_test_code(open_tok.start) {
                continue;
            }
            let calls =
                flow::call_sites(src, ctx.tokens, ctx.sig, scope.open_sig, scope.close_sig);
            // Deadline evidence: the fn arms a timeout on a stream itself.
            // `set_read_timeout(None)` (explicit unbounding) is not evidence.
            let armed = calls.iter().any(|c| {
                let arming = c.name.starts_with("set_read_timeout")
                    || c.name.starts_with("set_write_timeout")
                    || c.name == "connect_timeout";
                arming
                    && !ctx
                        .sig_tok(c.sig_idx + 2)
                        .is_some_and(|a| a.is_ident(src, "None"))
            });
            if armed {
                continue;
            }
            for c in &calls {
                let bare = (c.receiver.is_some() && BARE_IO.contains(&c.name.as_str()))
                    || (c.args_empty && (c.name == "recv" || c.name == "wait"));
                if !bare {
                    continue;
                }
                // Kill-then-reap: a `wait()` whose receiver was `kill()`ed
                // earlier in the same fn is bounded — SIGKILL is already
                // delivered, so the wait returns as soon as the OS reaps.
                if c.name == "wait"
                    && c.args_empty
                    && calls.iter().any(|k| {
                        k.name == "kill" && k.sig_idx < c.sig_idx && k.receiver == c.receiver
                    })
                {
                    continue;
                }
                out.push(Diagnostic {
                    rule: self.name(),
                    severity: self.severity(),
                    file: ctx.path.to_path_buf(),
                    line: c.line,
                    col: c.col,
                    message: format!(
                        "`{}` in `{}` is reachable from the coordinator sweep / worker loop with no deadline; arm `set_read_timeout`/`set_write_timeout`, use a `_timeout` variant, or (if the reap path provably severs this stream) register the fn in CLOCK_BOUNDED with its audit note",
                        c.name, scope.name
                    ),
                });
            }
        }
    }
}

// ---------------------------------------------------------------------------
// wire-unchecked-arith
// ---------------------------------------------------------------------------

/// Frame decoding parses attacker-controllable lengths (`<len:08x>` headers
/// arrive off the wire before any checksum is verified), so inside a
/// `lint: zone(wire-frame)` region every `+`/`*` whose operand is a
/// length/offset and every `as` narrowing of one must be `checked_*` /
/// `saturating_*` / `try_into` — a hostile length that wraps an index
/// turns a checked frame error into a panic or a mis-slice.
pub struct WireUncheckedArith;

const INT_TYPES: &[&str] = &[
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
];

/// Is this identifier a length/offset quantity by name?
fn lengthish_ident(name: &str) -> bool {
    let lower = name.to_ascii_lowercase();
    lower.contains("len")
        || lower.contains("size")
        || lower.contains("offset")
        || lower.contains("count")
        || matches!(lower.as_str(), "pos" | "idx" | "scanned" | "start" | "end" | "cursor" | "n")
}

impl Rule for WireUncheckedArith {
    fn name(&self) -> &'static str {
        "wire-unchecked-arith"
    }
    fn description(&self) -> &'static str {
        "length/offset arithmetic in wire-frame zones must be checked_*/try_into (DESIGN \u{a7}16)"
    }
    fn severity(&self) -> Severity {
        Severity::Deny
    }
    fn check(&self, ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
        if ctx.file_is_test || ctx.zones.iter().all(|z| z.name != "wire-frame") {
            return;
        }
        let src = ctx.src;
        // Does the expression *ending* at sig index `i` look like a
        // length/offset? Either a length-named identifier, or a call chain
        // ending in `.len()`.
        let lengthish_before = |i: usize| -> bool {
            let Some(t) = ctx.sig_tok(i) else { return false };
            if t.kind == TokKind::Ident {
                return lengthish_ident(t.text(src));
            }
            if t.is_punct(src, ')') && i >= 3 {
                // `….len()` — close, open, callee.
                return ctx.sig_tok(i - 1).is_some_and(|p| p.is_punct(src, '('))
                    && ctx.sig_tok(i - 2).is_some_and(|m| {
                        m.kind == TokKind::Ident && lengthish_ident(m.text(src))
                    });
            }
            false
        };
        // Does the expression *starting* at sig index `i` look like one?
        let lengthish_after = |i: usize| -> bool {
            let Some(t) = ctx.sig_tok(i) else { return false };
            if t.kind != TokKind::Ident {
                return false;
            }
            if lengthish_ident(t.text(src)) {
                return true;
            }
            // `name.len()` / `self.field.len()` — scan the dotted chain.
            let mut j = i;
            while ctx.sig_tok(j + 1).is_some_and(|d| d.is_punct(src, '.'))
                && ctx.sig_tok(j + 2).is_some_and(|m| m.kind == TokKind::Ident)
            {
                j += 2;
                if ctx.sig_tok(j).is_some_and(|m| lengthish_ident(m.text(src)))
                    && ctx.sig_tok(j + 1).is_some_and(|p| p.is_punct(src, '('))
                {
                    return true;
                }
            }
            false
        };
        for i in 0..ctx.sig.len() {
            let t = &ctx.tokens[ctx.sig[i]];
            if ctx.in_test_code(t.start) || !ctx.in_zone("wire-frame", t.line) {
                continue;
            }
            let plus = t.is_punct(src, '+');
            let star = t.is_punct(src, '*');
            if plus || star {
                // Binary position: something value-like on the left.
                let binary = i > 0
                    && ctx.sig_tok(i - 1).is_some_and(|p| {
                        matches!(p.kind, TokKind::Ident | TokKind::Num)
                            || p.is_punct(src, ')')
                            || p.is_punct(src, ']')
                    });
                if !binary {
                    continue;
                }
                // Right operand: skip the `=` of a compound `+=`/`*=`.
                let rhs =
                    if ctx.sig_tok(i + 1).is_some_and(|e| e.is_punct(src, '=')) { i + 2 } else { i + 1 };
                if lengthish_before(i - 1) || lengthish_after(rhs) {
                    let op = if plus { "+" } else { "*" };
                    let fix = if plus { "checked_add" } else { "checked_mul" };
                    out.push(diag(self.name(), self.severity(), ctx, t, format!(
                        "unchecked `{op}` on length/offset arithmetic in a wire-frame zone; a hostile length must not wrap — use `{fix}` (or `saturating_*` where clamping is provably equivalent)"
                    )));
                }
            }
            if t.is_ident(src, "as")
                && ctx.sig_tok(i + 1)
                    .is_some_and(|ty| INT_TYPES.contains(&ty.text(src)))
                && i > 0
                && lengthish_before(i - 1)
            {
                out.push(diag(self.name(), self.severity(), ctx, t,
                    "`as` cast of a length/offset in a wire-frame zone truncates silently; use `try_into` with an explicit error path".into()));
            }
        }
    }
}

/// Extract format specs (text between `{` and `}`, `{{` escapes skipped)
/// that format floats lossily: a precision (`.`) or scientific (`e`/`E`)
/// spec. Returns the offending spec bodies.
fn lossy_float_specs(fmt_literal: &str) -> Vec<String> {
    let mut out = Vec::new();
    let b = fmt_literal.as_bytes();
    let mut i = 0usize;
    while i < b.len() {
        if b[i] == b'{' {
            if b.get(i + 1) == Some(&b'{') {
                i += 2;
                continue;
            }
            let Some(end) = fmt_literal[i + 1..].find('}').map(|e| i + 1 + e) else {
                break;
            };
            let spec = &fmt_literal[i + 1..end];
            if let Some((_, flags)) = spec.split_once(':') {
                let lossy_precision = flags.contains('.');
                let lossy_sci = matches!(flags.as_bytes().last(), Some(b'e' | b'E'));
                if lossy_precision || lossy_sci {
                    out.push(spec.to_string());
                }
            }
            i = end + 1;
        } else {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::check_file;
    use std::path::Path;

    fn diags(rel: &str, src: &str) -> Vec<Diagnostic> {
        check_file(Path::new(rel), rel, src, &default_rules(), false).diagnostics
    }

    #[test]
    fn nan_unsafe_cmp_fires_only_inside_sorters() {
        let src = "fn f(v: &mut Vec<f64>) {\n  v.sort_by(|a, b| a.partial_cmp(b).unwrap());\n  let _ = 1.0f64.partial_cmp(&2.0);\n}\n";
        let d = diags("crates/x/src/a.rs", src);
        assert_eq!(d.iter().filter(|d| d.rule == "nan-unsafe-cmp").count(), 1);
    }

    #[test]
    fn total_cmp_is_clean() {
        let src = "fn f(v: &mut Vec<f64>) { v.sort_by(|a, b| a.total_cmp(b)); }\n";
        assert!(diags("crates/x/src/a.rs", src).iter().all(|d| d.rule != "nan-unsafe-cmp"));
    }

    #[test]
    fn wall_clock_allowed_in_measure_module() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert!(diags("crates/slambench/src/measure.rs", src).is_empty());
        assert!(diags("crates/service/src/clock.rs", src).is_empty());
        assert!(!diags("crates/core/src/optimizer.rs", src).is_empty());
        assert!(!diags("crates/service/src/coordinator.rs", src).is_empty());
    }

    #[test]
    fn hash_iteration_flagged_in_core_only() {
        let src = "use std::collections::HashMap;\nstruct S { m: HashMap<u32, u32> }\nimpl S {\n  fn f(&self) -> Vec<u32> { self.m.keys().copied().collect() }\n}\n";
        assert!(diags("crates/core/src/x.rs", src)
            .iter()
            .any(|d| d.rule == "nondeterministic-iteration"));
        assert!(diags("crates/slambench/src/x.rs", src)
            .iter()
            .all(|d| d.rule != "nondeterministic-iteration"));
    }

    #[test]
    fn keyed_lookup_stays_legal() {
        let src = "use std::collections::HashSet;\nfn f(s: &HashSet<u64>) -> bool { s.contains(&3) && s.len() > 0 }\n";
        assert!(diags("crates/core/src/x.rs", src)
            .iter()
            .all(|d| d.rule != "nondeterministic-iteration"));
    }

    #[test]
    fn float_env_needs_zone() {
        let with_zone = "// lint: zone(float-exact): journal records are bit-exact\nfn f(v: f64) -> String { format!(\"{v:.6}\") }\n";
        let without = "fn f(v: f64) -> String { format!(\"{v:.6}\") }\n";
        assert!(diags("crates/core/src/journal.rs", with_zone)
            .iter()
            .any(|d| d.rule == "float-env"));
        assert!(diags("crates/core/src/journal.rs", without)
            .iter()
            .all(|d| d.rule != "float-env"));
    }

    #[test]
    fn float_env_accepts_bit_hex() {
        let src = "// lint: zone(float-exact): bit-exact\nfn f(v: f64) -> String { format!(\"{:016x}\", v.to_bits()) }\n";
        assert!(diags("crates/core/src/journal.rs", src).iter().all(|d| d.rule != "float-env"));
    }

    #[test]
    fn indexing_zone_tightens_panic_rule() {
        let src = "// lint: zone(no-indexing): hot loop must be panic-free\nfn f(v: &[u32], i: usize) -> u32 { v[i] }\n";
        assert!(diags("crates/x/src/a.rs", src)
            .iter()
            .any(|d| d.rule == "no-unaudited-panic" && d.message.contains("indexing")));
        let attr = "// lint: zone(no-indexing): hot loop\n#[derive(Clone)]\nstruct S;\n";
        assert!(diags("crates/x/src/a.rs", attr).is_empty(), "attribute brackets are not indexing");
    }
}
