//! A hand-rolled Rust lexer, just deep enough for linting.
//!
//! The grep gate this crate replaces could not tell `.unwrap()` in code from
//! `.unwrap()` inside a string literal, a raw string, or a nested block
//! comment. The lexer exists to make exactly that distinction: it produces a
//! token stream in which every string/char literal and every comment is a
//! single opaque token, so rules that scan for identifier patterns can never
//! fire on quoted or commented text.
//!
//! It is deliberately not a full Rust lexer: numeric literals are lumped
//! into one kind, keywords are plain identifiers, and no token trees are
//! built. Rules work on flat token sequences plus bracket matching.

/// What a token is. Comments are kept (suppression markers live in them);
/// whitespace is dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword, including raw identifiers (`r#type`).
    Ident,
    /// Lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// `"…"`, `r"…"`, `r#"…"#`, `b"…"`, `br#"…"#` — one token, quotes included.
    Str,
    /// `'x'`, `'\n'`, `b'x'`.
    Char,
    /// Integer or float literal, suffix included.
    Num,
    /// `// …` to end of line (doc `///` and `//!` included).
    LineComment,
    /// `/* … */` with arbitrary nesting (doc `/**` and `/*!` included).
    BlockComment,
    /// Any single punctuation byte: `.`, `(`, `{`, `#`, `!`, `:`, …
    Punct,
}

/// One token: kind, byte span into the source, and 1-based line/column of
/// its first byte.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    pub kind: TokKind,
    pub start: usize,
    pub end: usize,
    pub line: u32,
    pub col: u32,
}

impl Token {
    /// The token's text, sliced out of the source it was lexed from.
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }
    /// True for a punctuation token equal to `c`.
    pub fn is_punct(&self, src: &str, c: char) -> bool {
        self.kind == TokKind::Punct && self.text(src).starts_with(c)
    }
    /// True for an identifier token spelling exactly `name`.
    pub fn is_ident(&self, src: &str, name: &str) -> bool {
        self.kind == TokKind::Ident && self.text(src) == name
    }
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

struct Cursor<'s> {
    src: &'s [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'s> Cursor<'s> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }
    fn peek_at(&self, off: usize) -> Option<u8> {
        self.src.get(self.pos + off).copied()
    }
    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else if b & 0xC0 != 0x80 {
            // Count UTF-8 scalar starts, not continuation bytes, so columns
            // stay meaningful in files with non-ASCII comments.
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}
fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lex `src` into tokens. Never fails: unterminated literals and comments
/// extend to end of input (a linter must keep going on imperfect files).
pub fn lex(src: &str) -> Vec<Token> {
    let mut cur = Cursor { src: src.as_bytes(), pos: 0, line: 1, col: 1 };
    let mut out = Vec::with_capacity(src.len() / 4);
    while let Some(b) = cur.peek() {
        let (start, line, col) = (cur.pos, cur.line, cur.col);
        let kind = match b {
            b' ' | b'\t' | b'\r' | b'\n' => {
                cur.bump();
                continue;
            }
            b'/' if cur.peek_at(1) == Some(b'/') => {
                while cur.peek().is_some_and(|b| b != b'\n') {
                    cur.bump();
                }
                TokKind::LineComment
            }
            b'/' if cur.peek_at(1) == Some(b'*') => {
                cur.bump();
                cur.bump();
                let mut depth = 1usize;
                while depth > 0 {
                    match (cur.peek(), cur.peek_at(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            cur.bump();
                            cur.bump();
                        }
                        (Some(_), _) => {
                            cur.bump();
                        }
                        (None, _) => break,
                    }
                }
                TokKind::BlockComment
            }
            b'r' if matches!(cur.peek_at(1), Some(b'"') | Some(b'#')) && raw_str_ahead(&cur, 1) => {
                cur.bump();
                eat_raw_string(&mut cur);
                TokKind::Str
            }
            b'b' if cur.peek_at(1) == Some(b'r') && raw_str_ahead(&cur, 2) => {
                cur.bump();
                cur.bump();
                eat_raw_string(&mut cur);
                TokKind::Str
            }
            b'b' if cur.peek_at(1) == Some(b'"') => {
                cur.bump();
                eat_quoted(&mut cur, b'"');
                TokKind::Str
            }
            b'b' if cur.peek_at(1) == Some(b'\'') => {
                cur.bump();
                eat_quoted(&mut cur, b'\'');
                TokKind::Char
            }
            b'r' if cur.peek_at(1) == Some(b'#') && cur.peek_at(2).is_some_and(is_ident_start) => {
                // Raw identifier r#type.
                cur.bump();
                cur.bump();
                while cur.peek().is_some_and(is_ident_cont) {
                    cur.bump();
                }
                TokKind::Ident
            }
            b'"' => {
                eat_quoted(&mut cur, b'"');
                TokKind::Str
            }
            b'\'' => {
                if char_literal_ahead(&cur) {
                    eat_quoted(&mut cur, b'\'');
                    TokKind::Char
                } else {
                    // Lifetime: 'ident (no closing quote).
                    cur.bump();
                    while cur.peek().is_some_and(is_ident_cont) {
                        cur.bump();
                    }
                    TokKind::Lifetime
                }
            }
            b'0'..=b'9' => {
                eat_number(&mut cur);
                TokKind::Num
            }
            b if is_ident_start(b) => {
                while cur.peek().is_some_and(is_ident_cont) {
                    cur.bump();
                }
                TokKind::Ident
            }
            _ => {
                cur.bump();
                TokKind::Punct
            }
        };
        out.push(Token { kind, start, end: cur.pos, line, col });
    }
    out
}

/// From `cur.pos + off` (pointing past the `r` / `br` prefix): zero or more
/// `#` then a `"` means a raw string starts here. `r#ident` fails this.
fn raw_str_ahead(cur: &Cursor<'_>, off: usize) -> bool {
    let mut i = off;
    while cur.peek_at(i) == Some(b'#') {
        i += 1;
    }
    cur.peek_at(i) == Some(b'"')
}

/// Disambiguate `'c'` / `'\n'` from lifetime `'a`. A char literal is a quote
/// followed by either an escape, or exactly one scalar and a closing quote.
fn char_literal_ahead(cur: &Cursor<'_>) -> bool {
    match cur.peek_at(1) {
        Some(b'\\') => true,
        Some(b'\'') | None => false,
        Some(b) if is_ident_start(b) || b.is_ascii_digit() => {
            // 'a' is a char, 'a is a lifetime, 'abc' is (invalid but) a
            // char as far as the lexer cares; skip the ident run and look
            // for the closing quote.
            let mut i = 2;
            while cur.peek_at(i).is_some_and(is_ident_cont) {
                i += 1;
            }
            cur.peek_at(i) == Some(b'\'')
        }
        Some(_) => true, // '+' etc: always a char literal
    }
}

/// Consume a `"…"` or `'…'` literal including quotes, honouring `\`-escapes.
fn eat_quoted(cur: &mut Cursor<'_>, quote: u8) {
    cur.bump(); // opening quote
    while let Some(b) = cur.peek() {
        if b == b'\\' {
            cur.bump();
            cur.bump();
        } else if b == quote {
            cur.bump();
            break;
        } else {
            cur.bump();
        }
    }
}

/// Consume `r##"…"##` (cursor on the first `#` or `"`): count hashes, then
/// scan for a quote followed by that many hashes.
fn eat_raw_string(cur: &mut Cursor<'_>) {
    let mut hashes = 0usize;
    while cur.peek() == Some(b'#') {
        hashes += 1;
        cur.bump();
    }
    cur.bump(); // opening quote
    while let Some(b) = cur.bump() {
        if b == b'"' {
            let mut matched = 0;
            while matched < hashes && cur.peek() == Some(b'#') {
                matched += 1;
                cur.bump();
            }
            if matched == hashes {
                break;
            }
        }
    }
}

/// Consume a numeric literal: ints, floats, hex/oct/bin, `_` separators,
/// exponents, and type suffixes. Stops before `..` so ranges survive.
fn eat_number(cur: &mut Cursor<'_>) {
    if cur.peek() == Some(b'0') && matches!(cur.peek_at(1), Some(b'x' | b'o' | b'b')) {
        cur.bump();
        cur.bump();
        while cur.peek().is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_') {
            cur.bump();
        }
        return;
    }
    while cur.peek().is_some_and(|b| b.is_ascii_digit() || b == b'_') {
        cur.bump();
    }
    // Fractional part — but not `..` (range) or `.method()`.
    if cur.peek() == Some(b'.') && cur.peek_at(1).is_some_and(|b| b.is_ascii_digit()) {
        cur.bump();
        while cur.peek().is_some_and(|b| b.is_ascii_digit() || b == b'_') {
            cur.bump();
        }
    }
    // Exponent.
    if matches!(cur.peek(), Some(b'e' | b'E')) {
        let sign = matches!(cur.peek_at(1), Some(b'+' | b'-'));
        let digit_at = if sign { 2 } else { 1 };
        if cur.peek_at(digit_at).is_some_and(|b| b.is_ascii_digit()) {
            cur.bump();
            if sign {
                cur.bump();
            }
            while cur.peek().is_some_and(|b| b.is_ascii_digit() || b == b'_') {
                cur.bump();
            }
        }
    }
    // Suffix (u32, f64, usize, …).
    while cur.peek().is_some_and(is_ident_cont) {
        cur.bump();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokKind, String)> {
        lex(src).iter().map(|t| (t.kind, t.text(src).to_string())).collect()
    }

    #[test]
    fn idents_and_calls() {
        let ks = kinds("x.unwrap()");
        assert_eq!(ks[0], (TokKind::Ident, "x".into()));
        assert_eq!(ks[1], (TokKind::Punct, ".".into()));
        assert_eq!(ks[2], (TokKind::Ident, "unwrap".into()));
        assert_eq!(ks[3], (TokKind::Punct, "(".into()));
        assert_eq!(ks[4], (TokKind::Punct, ")".into()));
    }

    #[test]
    fn string_swallows_unwrap() {
        let ks = kinds(r#"let s = "call .unwrap() here";"#);
        assert!(ks.iter().all(|(k, t)| *k != TokKind::Ident || t != "unwrap"));
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokKind::Str).count(), 1);
    }

    #[test]
    fn raw_string_with_hashes_and_quotes() {
        let src = r##"let s = r#"she said ".unwrap()" loudly"#;"##;
        let ks = kinds(src);
        assert!(ks.iter().all(|(k, t)| *k != TokKind::Ident || t != "unwrap"));
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Str && t.contains("loudly")));
    }

    #[test]
    fn nested_block_comment() {
        let src = "a /* outer /* inner .unwrap() */ still comment */ b";
        let ks = kinds(src);
        assert_eq!(ks.len(), 3);
        assert_eq!(ks[1].0, TokKind::BlockComment);
        assert!(ks[1].1.contains("inner"));
        assert_eq!(ks[2], (TokKind::Ident, "b".into()));
    }

    #[test]
    fn lifetime_vs_char() {
        let ks = kinds("fn f<'a>(x: &'a u8) { let c = 'x'; let n = '\\n'; }");
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokKind::Lifetime).count(), 2);
        assert_eq!(ks.iter().filter(|(k, _)| *k == TokKind::Char).count(), 2);
    }

    #[test]
    fn numbers_and_ranges() {
        let ks = kinds("0..5 0.5 1e-3 0xFFu32 1_000.25f64");
        let nums: Vec<_> =
            ks.iter().filter(|(k, _)| *k == TokKind::Num).map(|(_, t)| t.clone()).collect();
        assert_eq!(nums, vec!["0", "5", "0.5", "1e-3", "0xFFu32", "1_000.25f64"]);
    }

    #[test]
    fn raw_ident_is_not_a_raw_string() {
        let ks = kinds("let r#type = 1;");
        assert!(ks.iter().any(|(k, t)| *k == TokKind::Ident && t == "r#type"));
    }

    #[test]
    fn line_and_col_are_one_based() {
        let toks = lex("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn unterminated_string_reaches_eof() {
        let ks = kinds("let s = \"oops");
        assert_eq!(ks.last().map(|(k, _)| *k), Some(TokKind::Str));
    }
}
