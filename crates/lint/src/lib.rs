//! `hm-lint` — workspace determinism & failure-semantics linter.
//!
//! Replaces the grep/awk unwrap gate that used to live in `scripts/ci.sh`:
//! a real lexer (strings, raw strings, char literals, nested block comments
//! handled correctly) feeding a token-stream rule engine. Rules encode the
//! invariants the paper's methodology rests on — no unaudited panics, no
//! NaN-unsafe comparators, no wall-clock outside the timing modules, no
//! hash-order-dependent iteration in the deterministic crates, and bit-exact
//! float round-trips in journal/fingerprint paths. See DESIGN §11.
//!
//! Std-only on purpose: the linter must build and run inside the offline
//! stub harness (`scripts/check_offline.sh`) with no external crates.

pub mod engine;
pub mod lexer;
pub mod rules;

use engine::{check_file, Diagnostic, Severity};
use rules::Rule;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Aggregated result of linting a file set.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    pub diagnostics: Vec<Diagnostic>,
    /// Per-rule count of `lint: allow` suppressions that absorbed a hit —
    /// the audit-debt figure ROADMAP tracks for burn-down.
    pub suppressed: BTreeMap<String, usize>,
    pub files_scanned: usize,
}

impl WorkspaceReport {
    pub fn errors(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Deny).count()
    }
    pub fn warnings(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warn).count()
    }
}

/// Directory names never descended into: build products, VCS internals,
/// the offline dependency stubs (vendored third-party shims, not ours to
/// lint), and rule fixture sets (intentionally violation-laden).
const SKIP_DIRS: &[&str] = &["target", ".git", "offline-stubs", "fixtures", "node_modules"];

/// Is this workspace-relative path test code in its entirety? Integration
/// test targets (`tests/` directories, including the top-level `tests`
/// crate) and benches are exercised by the harness, not shipped.
pub fn is_test_path(rel: &str) -> bool {
    rel.starts_with("tests/")
        || rel.contains("/tests/")
        || rel.starts_with("benches/")
        || rel.contains("/benches/")
}

/// Collect every `.rs` file under `root`, sorted for deterministic output
/// (directory read order is OS-dependent — the linter holds itself to the
/// same reproducibility bar it enforces).
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lint every `.rs` file under `root` with `rules`.
pub fn scan_workspace(root: &Path, rules: &[Box<dyn Rule>]) -> io::Result<WorkspaceReport> {
    let files = collect_rs_files(root)?;
    let mut report = WorkspaceReport::default();
    for path in &files {
        let rel: String = path
            .strip_prefix(root)
            .unwrap_or(path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = fs::read_to_string(path)?;
        let file_report = check_file(path, &rel, &src, rules, is_test_path(&rel));
        report.diagnostics.extend(file_report.diagnostics);
        for (rule, _line) in file_report.suppressed {
            *report.suppressed.entry(rule).or_insert(0) += 1;
        }
        report.files_scanned += 1;
    }
    Ok(report)
}

/// Promote every warning to an error (`--deny warnings`).
pub fn deny_warnings(report: &mut WorkspaceReport) {
    for d in &mut report.diagnostics {
        d.severity = Severity::Deny;
    }
}

/// Drop diagnostics of the named rule (`--allow <rule>` on the CLI).
pub fn allow_rule(report: &mut WorkspaceReport, rule: &str) {
    report.diagnostics.retain(|d| d.rule != rule);
}

/// Human diagnostics: `file:line:col: severity[rule]: message`, then a
/// summary line and the per-rule suppression counts.
pub fn render_human(report: &WorkspaceReport, root: &Path) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        let rel = d.file.strip_prefix(root).unwrap_or(&d.file);
        out.push_str(&format!(
            "{}:{}:{}: {}[{}]: {}\n",
            rel.display(),
            d.line,
            d.col,
            d.severity,
            d.rule,
            d.message
        ));
    }
    let (e, w) = (report.errors(), report.warnings());
    if e == 0 && w == 0 {
        out.push_str(&format!("hm-lint: clean ({} files)\n", report.files_scanned));
    } else {
        out.push_str(&format!(
            "hm-lint: {e} error{} and {w} warning{} across {} files\n",
            if e == 1 { "" } else { "s" },
            if w == 1 { "" } else { "s" },
            report.files_scanned
        ));
    }
    if report.suppressed.is_empty() {
        out.push_str("suppressions: none\n");
    } else {
        let total: usize = report.suppressed.values().sum();
        out.push_str(&format!("suppressions ({total} total — ROADMAP audit-debt burn-down):\n"));
        for (rule, n) in &report.suppressed {
            out.push_str(&format!("  {rule}: {n}\n"));
        }
    }
    out
}

/// Machine-readable report. Hand-rolled JSON: the crate is std-only so it
/// still builds when every external dependency is stubbed.
pub fn render_json(report: &WorkspaceReport, root: &Path) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str(&format!("  \"errors\": {},\n", report.errors()));
    out.push_str(&format!("  \"warnings\": {},\n", report.warnings()));
    out.push_str("  \"diagnostics\": [\n");
    for (i, d) in report.diagnostics.iter().enumerate() {
        let rel = d.file.strip_prefix(root).unwrap_or(&d.file);
        out.push_str(&format!(
            "    {{\"file\": {}, \"line\": {}, \"col\": {}, \"rule\": {}, \"severity\": {}, \"message\": {}}}{}\n",
            json_str(&rel.display().to_string()),
            d.line,
            d.col,
            json_str(d.rule),
            json_str(&d.severity.to_string()),
            json_str(&d.message),
            if i + 1 == report.diagnostics.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"suppressed\": {");
    for (i, (rule, n)) in report.suppressed.iter().enumerate() {
        out.push_str(&format!(
            "{}{}: {}",
            if i == 0 { "" } else { ", " },
            json_str(rule),
            n
        ));
    }
    out.push_str("}\n}\n");
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_paths_classified() {
        assert!(is_test_path("tests/lib.rs"));
        assert!(is_test_path("tests/tests/model_fidelity.rs"));
        assert!(is_test_path("crates/core/tests/journal_resume.rs"));
        assert!(!is_test_path("crates/core/src/journal.rs"));
        assert!(!is_test_path("examples/quickstart.rs"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
