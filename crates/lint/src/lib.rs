//! `hm-lint` — workspace determinism & failure-semantics linter.
//!
//! Replaces the grep/awk unwrap gate that used to live in `scripts/ci.sh`:
//! a real lexer (strings, raw strings, char literals, nested block comments
//! handled correctly) feeding a token-stream rule engine. Rules encode the
//! invariants the paper's methodology rests on — no unaudited panics, no
//! NaN-unsafe comparators, no wall-clock outside the timing modules, no
//! hash-order-dependent iteration in the deterministic crates, and bit-exact
//! float round-trips in journal/fingerprint paths. See DESIGN §11.
//!
//! Std-only on purpose: the linter must build and run inside the offline
//! stub harness (`scripts/check_offline.sh`) with no external crates.

pub mod engine;
pub mod flow;
pub mod lexer;
pub mod rules;
pub mod tree;

use engine::{analyze, check_analyzed, Diagnostic, Severity};
use rules::Rule;
use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Aggregated result of linting a file set.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    pub diagnostics: Vec<Diagnostic>,
    /// Per-rule count of `lint: allow` suppressions that absorbed a hit —
    /// the audit-debt figure ROADMAP tracks for burn-down.
    pub suppressed: BTreeMap<String, usize>,
    pub files_scanned: usize,
}

impl WorkspaceReport {
    pub fn errors(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Deny).count()
    }
    pub fn warnings(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == Severity::Warn).count()
    }
}

/// Directory names never descended into: build products, VCS internals,
/// the offline dependency stubs (vendored third-party shims, not ours to
/// lint), and rule fixture sets (intentionally violation-laden).
const SKIP_DIRS: &[&str] = &["target", ".git", "offline-stubs", "fixtures", "node_modules"];

/// Is this workspace-relative path test code in its entirety? Integration
/// test targets (`tests/` directories, including the top-level `tests`
/// crate) and benches are exercised by the harness, not shipped.
pub fn is_test_path(rel: &str) -> bool {
    rel.starts_with("tests/")
        || rel.contains("/tests/")
        || rel.starts_with("benches/")
        || rel.contains("/benches/")
}

/// Collect every `.rs` file under `root`, sorted for deterministic output
/// (directory read order is OS-dependent — the linter holds itself to the
/// same reproducibility bar it enforces).
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if entry.file_type()?.is_dir() {
                if !SKIP_DIRS.contains(&name.as_ref()) {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// Lint every `.rs` file under `root` with `rules`. Two-pass: every file
/// is analyzed first (lex, brace tree, symbol pass), the cross-file index
/// is built from the collected facts, then rules run with that index —
/// so `blocking-without-deadline` sees calls that cross file boundaries
/// and `lock-order` sees acquisition cycles split across files.
pub fn scan_workspace(root: &Path, rules: &[Box<dyn Rule>]) -> io::Result<WorkspaceReport> {
    let files = collect_rs_files(root)?;
    let mut sources = Vec::with_capacity(files.len());
    for path in files {
        let rel: String = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = fs::read_to_string(&path)?;
        sources.push((path, rel, src));
    }
    Ok(scan_sources(sources, rules))
}

/// Lint a set of in-memory sources as one workspace (the cross-file tests
/// drive this directly). `sources` is `(path, workspace-relative, text)`.
pub fn scan_sources(
    sources: Vec<(PathBuf, String, String)>,
    rules: &[Box<dyn Rule>],
) -> WorkspaceReport {
    let analyzed: Vec<engine::Analyzed> = sources
        .into_iter()
        .map(|(path, rel, src)| {
            let is_test = is_test_path(&rel);
            analyze(&path, &rel, src, is_test)
        })
        .collect();
    let facts: Vec<flow::FileFacts> = analyzed.iter().map(|a| a.facts.clone()).collect();
    let index = flow::build_index(&facts);
    let mut report = WorkspaceReport::default();
    for a in &analyzed {
        let file_report = check_analyzed(a, rules, &index);
        report.diagnostics.extend(file_report.diagnostics);
        for (rule, _line) in file_report.suppressed {
            *report.suppressed.entry(rule).or_insert(0) += 1;
        }
        report.files_scanned += 1;
    }
    report
}

/// Promote every warning to an error (`--deny warnings`).
pub fn deny_warnings(report: &mut WorkspaceReport) {
    for d in &mut report.diagnostics {
        d.severity = Severity::Deny;
    }
}

/// Drop diagnostics of the named rule (`--allow <rule>` on the CLI).
pub fn allow_rule(report: &mut WorkspaceReport, rule: &str) {
    report.diagnostics.retain(|d| d.rule != rule);
}

/// Human diagnostics: `file:line:col: severity[rule]: message`, then a
/// summary line and the per-rule suppression counts.
pub fn render_human(report: &WorkspaceReport, root: &Path) -> String {
    let mut out = String::new();
    for d in &report.diagnostics {
        let rel = d.file.strip_prefix(root).unwrap_or(&d.file);
        out.push_str(&format!(
            "{}:{}:{}: {}[{}]: {}\n",
            rel.display(),
            d.line,
            d.col,
            d.severity,
            d.rule,
            d.message
        ));
    }
    let (e, w) = (report.errors(), report.warnings());
    if e == 0 && w == 0 {
        out.push_str(&format!("hm-lint: clean ({} files)\n", report.files_scanned));
    } else {
        out.push_str(&format!(
            "hm-lint: {e} error{} and {w} warning{} across {} files\n",
            if e == 1 { "" } else { "s" },
            if w == 1 { "" } else { "s" },
            report.files_scanned
        ));
    }
    if report.suppressed.is_empty() {
        out.push_str("suppressions: none\n");
    } else {
        let total: usize = report.suppressed.values().sum();
        out.push_str(&format!("suppressions ({total} total — ROADMAP audit-debt burn-down):\n"));
        for (rule, n) in &report.suppressed {
            out.push_str(&format!("  {rule}: {n}\n"));
        }
    }
    out
}

/// Machine-readable report. Hand-rolled JSON: the crate is std-only so it
/// still builds when every external dependency is stubbed.
pub fn render_json(report: &WorkspaceReport, root: &Path) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!("  \"files_scanned\": {},\n", report.files_scanned));
    out.push_str(&format!("  \"errors\": {},\n", report.errors()));
    out.push_str(&format!("  \"warnings\": {},\n", report.warnings()));
    out.push_str("  \"diagnostics\": [\n");
    for (i, d) in report.diagnostics.iter().enumerate() {
        let rel = d.file.strip_prefix(root).unwrap_or(&d.file);
        out.push_str(&format!(
            "    {{\"file\": {}, \"line\": {}, \"col\": {}, \"rule\": {}, \"severity\": {}, \"message\": {}}}{}\n",
            json_str(&rel.display().to_string()),
            d.line,
            d.col,
            json_str(d.rule),
            json_str(&d.severity.to_string()),
            json_str(&d.message),
            if i + 1 == report.diagnostics.len() { "" } else { "," }
        ));
    }
    out.push_str("  ],\n  \"suppressed\": {");
    for (i, (rule, n)) in report.suppressed.iter().enumerate() {
        out.push_str(&format!(
            "{}{}: {}",
            if i == 0 { "" } else { ", " },
            json_str(rule),
            n
        ));
    }
    out.push_str("}\n}\n");
    out
}

/// Serialize the per-rule suppression counts as the committed ratchet
/// baseline (`lint-baseline.json`): sorted keys, one per line, zero-count
/// rules omitted.
pub fn render_baseline(report: &WorkspaceReport) -> String {
    let mut out = String::from("{\n");
    let nonzero: Vec<(&String, &usize)> =
        report.suppressed.iter().filter(|(_, n)| **n > 0).collect();
    for (i, (rule, n)) in nonzero.iter().enumerate() {
        out.push_str(&format!(
            "  {}: {}{}\n",
            json_str(rule),
            n,
            if i + 1 == nonzero.len() { "" } else { "," }
        ));
    }
    out.push_str("}\n");
    out
}

/// Parse a baseline file: a flat JSON object of rule → count. Hand-rolled
/// like the rest of the crate's JSON (std-only), deliberately strict — a
/// malformed ratchet baseline must fail loudly, not read as empty.
pub fn parse_baseline(text: &str) -> Result<BTreeMap<String, usize>, String> {
    let body = text.trim();
    let body = body
        .strip_prefix('{')
        .and_then(|b| b.strip_suffix('}'))
        .ok_or("baseline is not a JSON object")?;
    let mut out = BTreeMap::new();
    for part in body.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (key, val) = part.split_once(':').ok_or_else(|| format!("bad entry {part:?}"))?;
        let key = key
            .trim()
            .strip_prefix('"')
            .and_then(|k| k.strip_suffix('"'))
            .ok_or_else(|| format!("unquoted key in {part:?}"))?;
        let val: usize =
            val.trim().parse().map_err(|_| format!("non-numeric count in {part:?}"))?;
        out.insert(key.to_string(), val);
    }
    Ok(out)
}

/// The suppression ratchet: compare the fresh per-rule counts against the
/// committed baseline. Growth is always a failure; shrinkage is also a
/// failure with a "tighten the baseline" message, so the committed file
/// stays exact and burn-downs are recorded in the same change that earns
/// them.
pub fn compare_baseline(
    report: &WorkspaceReport,
    baseline: &BTreeMap<String, usize>,
) -> Vec<String> {
    let mut problems = Vec::new();
    let mut rules: Vec<&String> =
        report.suppressed.keys().chain(baseline.keys()).collect();
    rules.sort();
    rules.dedup();
    for rule in rules {
        let fresh = report.suppressed.get(rule).copied().unwrap_or(0);
        let base = baseline.get(rule).copied().unwrap_or(0);
        if fresh > base {
            problems.push(format!(
                "ratchet: `{rule}` suppressions grew {base} -> {fresh}; fix the new sites instead of suppressing them"
            ));
        } else if fresh < base {
            problems.push(format!(
                "ratchet: `{rule}` suppressions shrank {base} -> {fresh}; tighten lint-baseline.json so the burn-down sticks"
            ));
        }
    }
    problems
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn test_paths_classified() {
        assert!(is_test_path("tests/lib.rs"));
        assert!(is_test_path("tests/tests/model_fidelity.rs"));
        assert!(is_test_path("crates/core/tests/journal_resume.rs"));
        assert!(!is_test_path("crates/core/src/journal.rs"));
        assert!(!is_test_path("examples/quickstart.rs"));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_str("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
    }
}
