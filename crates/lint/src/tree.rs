//! Brace-tree / item parser: the structural layer between the flat token
//! stream and the flow-aware rules.
//!
//! The lexer guarantees that braces inside strings and comments never reach
//! us, so a single forward pass over the significant tokens with a scope
//! stack recovers the item structure rules care about: which module / `fn` /
//! `impl` a token lives in, and how blocks nest. It is deliberately not a
//! Rust parser — expressions are opaque, generics are skipped heuristically
//! — but it is total: any byte soup the lexer tokenises produces a tree,
//! scopes always satisfy `open_sig <= close_sig`, and unbalanced braces
//! close at end of file instead of failing (fuzz-tested in
//! `tests/fuzz_lexer.rs`).

use crate::lexer::Token;

/// What kind of item a scope's braces belong to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeKind {
    /// The whole file (no braces of its own).
    Root,
    /// `mod name { … }`
    Module,
    /// `fn name(…) { … }` — including methods and nested fns.
    Fn,
    /// `impl Type { … }` / `impl Trait for Type { … }` (name = the type).
    Impl,
    /// `trait Name { … }`
    Trait,
    /// Any other `{ … }`: blocks, match arms, struct literals, closures.
    Block,
}

/// One scope in the arena. `open_sig`/`close_sig` are indices into the
/// engine's significant-token list (`FileCtx::sig`); a token at sig index
/// `i` is inside the scope iff `open_sig <= i <= close_sig`.
#[derive(Debug, Clone)]
pub struct Scope {
    pub kind: ScopeKind,
    /// Item name (`fn`/`mod`/`trait` name, `impl` target type); empty for
    /// `Root` and `Block`.
    pub name: String,
    pub open_sig: usize,
    pub close_sig: usize,
    pub parent: Option<usize>,
    pub children: Vec<usize>,
}

/// Arena of scopes; index 0 is always the root.
#[derive(Debug)]
pub struct ScopeTree {
    pub scopes: Vec<Scope>,
}

/// Keywords that can be followed by `(` without being a call, and can
/// appear where an item name would otherwise be read.
const NON_ITEM_KEYWORDS: &[&str] = &[
    "for", "where", "dyn", "mut", "const", "unsafe", "async", "extern", "pub", "in", "crate",
];

/// Build the scope tree for one file. `src` is the source the tokens were
/// lexed from; `sig` holds indices of non-comment tokens.
pub fn parse(src: &str, tokens: &[Token], sig: &[usize]) -> ScopeTree {
    let mut scopes = vec![Scope {
        kind: ScopeKind::Root,
        name: String::new(),
        open_sig: 0,
        close_sig: sig.len(),
        parent: None,
        children: Vec::new(),
    }];
    let mut stack: Vec<usize> = vec![0];
    // The item header seen since the last statement boundary, waiting for
    // its `{`. Cancelled by `;` (trait method decls, `mod name;`).
    let mut pending: Option<(ScopeKind, String)> = None;

    let tok = |i: usize| -> &Token { &tokens[sig[i]] };
    let mut i = 0usize;
    while i < sig.len() {
        let t = tok(i);
        if t.is_ident(src, "fn") {
            // `fn name` — a bare `fn` (fn-pointer type) has no ident next.
            if let Some(name) = sig.get(i + 1).map(|&ti| &tokens[ti]).filter(|n| {
                n.kind == crate::lexer::TokKind::Ident && !NON_ITEM_KEYWORDS.contains(&n.text(src))
            }) {
                pending = Some((ScopeKind::Fn, name.text(src).to_string()));
            }
        } else if t.is_ident(src, "mod") || t.is_ident(src, "trait") {
            let kind = if t.is_ident(src, "mod") { ScopeKind::Module } else { ScopeKind::Trait };
            if let Some(name) = sig.get(i + 1).map(|&ti| &tokens[ti]) {
                if name.kind == crate::lexer::TokKind::Ident {
                    pending = Some((kind, name.text(src).to_string()));
                }
            }
        } else if t.is_ident(src, "impl") {
            pending = Some((ScopeKind::Impl, impl_target_name(src, tokens, sig, i + 1)));
        } else if t.is_punct(src, ';') {
            pending = None;
        } else if t.is_punct(src, '{') {
            let (kind, name) = pending.take().unwrap_or((ScopeKind::Block, String::new()));
            let parent = *stack.last().unwrap_or(&0);
            let id = scopes.len();
            scopes.push(Scope {
                kind,
                name,
                open_sig: i,
                close_sig: sig.len(), // patched on close (or stays EOF)
                parent: Some(parent),
                children: Vec::new(),
            });
            if let Some(p) = scopes.get_mut(parent) {
                p.children.push(id);
            }
            stack.push(id);
        } else if t.is_punct(src, '}') {
            // Stray closers at the root are ignored — the tree must absorb
            // unbalanced input without failing.
            if stack.len() > 1 {
                if let Some(id) = stack.pop() {
                    if let Some(s) = scopes.get_mut(id) {
                        s.close_sig = i;
                    }
                }
            }
            pending = None;
        }
        i += 1;
    }
    ScopeTree { scopes }
}

/// The type name an `impl` header targets: the first plain identifier at
/// angle-bracket depth 0 after `for` if present (`impl Trait for Type`),
/// else the first after the generics (`impl<T> Type<T>`). Heuristic — used
/// for labels and lock identities, where a rare miss is harmless.
fn impl_target_name(src: &str, tokens: &[Token], sig: &[usize], from: usize) -> String {
    let mut depth = 0i32;
    let mut first: Option<&str> = None;
    let mut after_for: Option<&str> = None;
    let mut saw_for = false;
    let mut i = from;
    while i < sig.len() {
        let t = &tokens[sig[i]];
        if t.is_punct(src, '{') || t.is_punct(src, ';') || t.is_ident(src, "where") {
            break;
        }
        if t.is_punct(src, '<') {
            depth += 1;
        } else if t.is_punct(src, '>') {
            // `->` in a generic bound like `Fn() -> T` is not a closer.
            let arrow = i > from && tokens[sig[i - 1]].is_punct(src, '-');
            if !arrow {
                depth -= 1;
            }
        } else if depth == 0 && t.kind == crate::lexer::TokKind::Ident {
            let txt = t.text(src);
            if txt == "for" {
                saw_for = true;
            } else if !NON_ITEM_KEYWORDS.contains(&txt) {
                if saw_for {
                    if after_for.is_none() {
                        after_for = Some(txt);
                    }
                } else if first.is_none() {
                    first = Some(txt);
                }
            }
        }
        i += 1;
    }
    after_for.or(first).unwrap_or("").to_string()
}

impl ScopeTree {
    /// The innermost scope containing sig index `i` (root if none deeper).
    pub fn scope_at(&self, i: usize) -> usize {
        let mut cur = 0usize;
        'descend: loop {
            for &c in &self.scopes[cur].children {
                let s = &self.scopes[c];
                if s.open_sig <= i && i <= s.close_sig {
                    cur = c;
                    continue 'descend;
                }
            }
            return cur;
        }
    }

    /// The innermost `Fn` scope containing sig index `i`.
    pub fn enclosing_fn(&self, i: usize) -> Option<usize> {
        let mut cur = Some(self.scope_at(i));
        while let Some(id) = cur {
            if self.scopes[id].kind == ScopeKind::Fn {
                return Some(id);
            }
            cur = self.scopes[id].parent;
        }
        None
    }

    /// The nearest enclosing `Impl`/`Trait`/`Module` name above scope `id`
    /// (for qualifying method names and lock identities).
    pub fn owner_name(&self, id: usize) -> Option<&str> {
        let mut cur = self.scopes[id].parent;
        while let Some(p) = cur {
            let s = &self.scopes[p];
            if matches!(s.kind, ScopeKind::Impl | ScopeKind::Trait) && !s.name.is_empty() {
                return Some(&s.name);
            }
            cur = s.parent;
        }
        None
    }

    /// All `Fn` scopes, in source order, as arena indices.
    pub fn fn_scopes(&self) -> Vec<usize> {
        (0..self.scopes.len()).filter(|&i| self.scopes[i].kind == ScopeKind::Fn).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree_of(src: &str) -> (Vec<Token>, Vec<usize>, ScopeTree) {
        let tokens = lex(src);
        let sig: Vec<usize> = (0..tokens.len()).filter(|&i| !tokens[i].is_comment()).collect();
        let tree = parse(src, &tokens, &sig);
        (tokens, sig, tree)
    }

    #[test]
    fn fn_mod_impl_nesting() {
        let src = "mod m { impl Foo { fn bar(&self) { if x { y(); } } } }";
        let (_t, _s, tree) = tree_of(src);
        let kinds: Vec<_> = tree.scopes.iter().map(|s| (s.kind, s.name.clone())).collect();
        assert_eq!(kinds[0].0, ScopeKind::Root);
        assert_eq!(kinds[1], (ScopeKind::Module, "m".into()));
        assert_eq!(kinds[2], (ScopeKind::Impl, "Foo".into()));
        assert_eq!(kinds[3], (ScopeKind::Fn, "bar".into()));
        assert_eq!(kinds[4].0, ScopeKind::Block);
        assert_eq!(tree.scopes[4].parent, Some(3));
    }

    #[test]
    fn impl_trait_for_type_names_the_type() {
        let src = "impl<T: Clone> Display for Wrapper<T> { fn fmt(&self) {} }";
        let (_t, _s, tree) = tree_of(src);
        assert_eq!(tree.scopes[1].kind, ScopeKind::Impl);
        assert_eq!(tree.scopes[1].name, "Wrapper");
    }

    #[test]
    fn trait_method_decl_without_body_is_not_a_scope() {
        let src = "trait T { fn a(&self); fn b(&self) { c(); } }";
        let (_t, _s, tree) = tree_of(src);
        let fns: Vec<_> =
            tree.scopes.iter().filter(|s| s.kind == ScopeKind::Fn).map(|s| s.name.clone()).collect();
        assert_eq!(fns, vec!["b"]);
    }

    #[test]
    fn enclosing_fn_attribution() {
        let src = "fn outer() { helper(); } fn second() { other(); }";
        let (tokens, sig, tree) = tree_of(src);
        let helper_sig = sig
            .iter()
            .position(|&ti| tokens[ti].is_ident(src, "helper"))
            .expect("helper token");
        let f = tree.enclosing_fn(helper_sig).expect("inside a fn");
        assert_eq!(tree.scopes[f].name, "outer");
    }

    #[test]
    fn unbalanced_braces_do_not_fail() {
        for src in ["}}} fn a() {{", "fn a() { {", "{ } }", "impl ;", "fn"] {
            let (_t, _s, tree) = tree_of(src);
            assert!(!tree.scopes.is_empty());
            for s in &tree.scopes {
                assert!(s.open_sig <= s.close_sig);
            }
        }
    }

    #[test]
    fn fn_pointer_type_is_not_an_item() {
        let src = "fn real(cb: fn(u32) -> u32) { cb(1); }";
        let (_t, _s, tree) = tree_of(src);
        let fns: Vec<_> =
            tree.scopes.iter().filter(|s| s.kind == ScopeKind::Fn).map(|s| s.name.clone()).collect();
        assert_eq!(fns, vec!["real"]);
    }
}
