//! Flow analysis: per-file symbols (fns + call sites + lock-guard spans)
//! and the cross-file fixpoint rules use to reason about "reachable from
//! the coordinator sweep" or "while a `Mutex` guard is live".
//!
//! Everything here is conservative-by-name: calls resolve to every function
//! sharing the callee's simple name, receivers are dotted identifier paths,
//! guard liveness is lexical (binding statement to end of the enclosing
//! block, truncated at `drop(guard)`). That over-approximates reachability
//! and guard extent — the right direction for deny-level rules, and cheap
//! enough to run on every lint invocation.

use crate::lexer::{TokKind, Token};
use crate::tree::ScopeTree;
use std::collections::{BTreeMap, BTreeSet};

/// A call site attributed to its enclosing fn: `name(` or `recv.name(`.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee simple name (`recv_timeout`, `lock`, …); macros keep their
    /// bang (`println!`) so rules can tell them apart.
    pub name: String,
    /// Dotted receiver path for method calls (`self.inner.rx`), `None` for
    /// free / associated calls.
    pub receiver: Option<String>,
    /// Sig index of the callee name token.
    pub sig_idx: usize,
    pub line: u32,
    pub col: u32,
    /// True when the argument list is exactly `()` — distinguishes
    /// `child.wait()` (blocking) from `condvar.wait(guard)` (releases the
    /// lock while parked).
    pub args_empty: bool,
}

/// A lexical range during which a `.lock()` guard is live.
#[derive(Debug, Clone)]
pub struct GuardSpan {
    /// Lock identity: receiver path with `self` qualified by the impl type
    /// (`ServicePool.inner`), so same-named fields on different types never
    /// alias in the acquisition graph.
    pub lock_id: String,
    /// Sig-index range `[start, end]` in which the guard is held.
    pub start_sig: usize,
    pub end_sig: usize,
    pub line: u32,
    pub col: u32,
}

/// An edge in the lock acquisition graph: `to` was acquired while `from`
/// was held, at the recorded site.
#[derive(Debug, Clone)]
pub struct LockEdge {
    pub from: String,
    pub to: String,
    pub rel: String,
    pub line: u32,
    pub col: u32,
}

/// One function's facts for the cross-file pass.
#[derive(Debug, Clone)]
pub struct FnFacts {
    pub name: String,
    /// Callee simple names (macros excluded — they do not resolve to fns).
    pub calls: BTreeSet<String>,
}

/// Per-file product of the symbol pass.
#[derive(Debug, Clone, Default)]
pub struct FileFacts {
    pub rel: String,
    pub fns: Vec<FnFacts>,
    pub lock_edges: Vec<LockEdge>,
}

/// Keywords that may directly precede `(` without being calls.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "in", "as", "let", "else", "move", "fn",
    "impl", "dyn", "where", "break", "continue", "unsafe", "extern",
];

/// Extract every call site inside sig range `[from, to]` (inclusive).
pub fn call_sites(src: &str, tokens: &[Token], sig: &[usize], from: usize, to: usize) -> Vec<CallSite> {
    let mut out = Vec::new();
    let tok = |i: usize| -> &Token { &tokens[sig[i]] };
    let mut i = from;
    while i <= to && i < sig.len() {
        let t = tok(i);
        if t.kind == TokKind::Ident && !CALL_KEYWORDS.contains(&t.text(src)) {
            let next = sig.get(i + 1).map(|&ti| &tokens[ti]);
            // Macro call `name!(…)` / `name![…]` / `name!{…}`.
            if next.is_some_and(|n| n.is_punct(src, '!'))
                && sig.get(i + 2).map(|&ti| &tokens[ti]).is_some_and(|p| {
                    p.is_punct(src, '(') || p.is_punct(src, '[') || p.is_punct(src, '{')
                })
            {
                out.push(CallSite {
                    name: format!("{}!", t.text(src)),
                    receiver: None,
                    sig_idx: i,
                    line: t.line,
                    col: t.col,
                    args_empty: false,
                });
                i += 1;
                continue;
            }
            if next.is_some_and(|n| n.is_punct(src, '(')) {
                let is_method = i > 0 && tok(i - 1).is_punct(src, '.');
                let receiver = if is_method { Some(receiver_path(src, tokens, sig, i - 1)) } else { None };
                let args_empty =
                    sig.get(i + 2).map(|&ti| &tokens[ti]).is_some_and(|p| p.is_punct(src, ')'));
                out.push(CallSite {
                    name: t.text(src).to_string(),
                    receiver,
                    sig_idx: i,
                    line: t.line,
                    col: t.col,
                    args_empty,
                });
            }
        }
        i += 1;
    }
    out
}

/// Walk back from the `.` before a method name, collecting the dotted
/// identifier path: `self.inner.rx.recv(` → `self.inner.rx`. A call or
/// index in the chain (`io::stdout().lock(`) contributes its trailing
/// callee name (`stdout()`), which is enough identity for lock ids.
fn receiver_path(src: &str, tokens: &[Token], sig: &[usize], dot_sig: usize) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut i = dot_sig; // points at the `.`
    while i > 0 {
        let prev = &tokens[sig[i - 1]];
        if prev.kind == TokKind::Ident || prev.kind == TokKind::Num {
            parts.push(prev.text(src).to_string());
            // Continue the chain only through another `.`.
            if i >= 2 && tokens[sig[i - 2]].is_punct(src, '.') {
                i -= 2;
                continue;
            }
            break;
        }
        if prev.is_punct(src, ')') {
            // A call result in the chain: find its callee name.
            if let Some(open) = matching_open(src, tokens, sig, i - 1, '(', ')') {
                if open > 0 {
                    let callee = &tokens[sig[open - 1]];
                    if callee.kind == TokKind::Ident {
                        parts.push(format!("{}()", callee.text(src)));
                        if open >= 2 && tokens[sig[open - 2]].is_punct(src, '.') {
                            i = open - 1;
                            continue;
                        }
                    }
                }
            }
            break;
        }
        break;
    }
    parts.reverse();
    parts.join(".")
}

/// Backward bracket match: the sig index of the `(` matching the `)` at
/// `close_sig`.
fn matching_open(
    src: &str,
    tokens: &[Token],
    sig: &[usize],
    close_sig: usize,
    open: char,
    close: char,
) -> Option<usize> {
    let mut depth = 0usize;
    let mut i = close_sig + 1;
    while i > 0 {
        i -= 1;
        let t = &tokens[sig[i]];
        if t.is_punct(src, close) {
            depth += 1;
        } else if t.is_punct(src, open) {
            depth = depth.saturating_sub(1);
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Qualify a receiver path into a lock identity: `self` becomes the
/// enclosing impl's type name, so `self.inner` in `impl ServicePool`
/// yields `ServicePool.inner`.
fn lock_identity(receiver: &str, owner: Option<&str>) -> String {
    let owner = owner.unwrap_or("file");
    if receiver == "self" {
        owner.to_string()
    } else if let Some(rest) = receiver.strip_prefix("self.") {
        format!("{owner}.{rest}")
    } else if receiver.is_empty() {
        format!("{owner}.<lock>")
    } else {
        receiver.to_string()
    }
}

/// Find every `.lock()` guard span inside the fn scope `fn_id`.
///
/// A `let`-bound guard lives from its statement's end to the close of the
/// enclosing block (truncated at a `drop(name)` call); a temporary guard
/// (`*self.lock() = …`, `self.inner.lock().field`) lives to the end of its
/// own statement.
pub fn guard_spans(
    src: &str,
    tokens: &[Token],
    sig: &[usize],
    tree: &ScopeTree,
    fn_id: usize,
) -> Vec<GuardSpan> {
    let fn_scope = &tree.scopes[fn_id];
    let owner = tree.owner_name(fn_id).map(|s| s.to_string());
    let calls = call_sites(src, tokens, sig, fn_scope.open_sig, fn_scope.close_sig);
    let tok = |i: usize| -> &Token { &tokens[sig[i]] };
    let mut out = Vec::new();
    for c in &calls {
        if c.name != "lock" || !c.args_empty {
            continue;
        }
        // Skip lock acquisitions in a deeper nested fn (closures stay —
        // they run on some thread with the guard pattern intact).
        if tree.enclosing_fn(c.sig_idx) != Some(fn_id) {
            continue;
        }
        let lock_id =
            lock_identity(c.receiver.as_deref().unwrap_or(""), owner.as_deref());
        // Statement bounds: the enclosing scope of the call, then the
        // nearest `;` at that scope's own level on each side.
        let stmt_scope = tree.scope_at(c.sig_idx);
        let (s_open, s_close) = {
            let s = &tree.scopes[stmt_scope];
            (s.open_sig, s.close_sig)
        };
        let at_stmt_level = |i: usize| tree.scope_at(i) == stmt_scope;
        let mut stmt_start = s_open;
        let mut j = c.sig_idx;
        while j > s_open {
            j -= 1;
            if tok(j).is_punct(src, ';') && at_stmt_level(j) {
                stmt_start = j;
                break;
            }
        }
        let mut stmt_end = s_close;
        let mut k = c.sig_idx;
        while k < s_close && k + 1 < sig.len() {
            k += 1;
            if tok(k).is_punct(src, ';') && at_stmt_level(k) {
                stmt_end = k;
                break;
            }
        }
        // `let [mut] name = …`?
        let first = stmt_start
            + usize::from(tok(stmt_start).is_punct(src, ';') || tok(stmt_start).is_punct(src, '{'));
        let mut bound: Option<&str> = None;
        if first < sig.len() && tok(first).is_ident(src, "let") {
            let mut n = first + 1;
            if n < sig.len() && tok(n).is_ident(src, "mut") {
                n += 1;
            }
            if n < sig.len() && tok(n).kind == TokKind::Ident {
                bound = Some(tok(n).text(src));
            }
        }
        let (start, mut end) = match bound {
            Some(_) => (stmt_end, s_close),
            None => (c.sig_idx, stmt_end),
        };
        // Truncate at `drop(name)` / `mem::drop(name)`.
        if let Some(name) = bound {
            for d in &calls {
                if d.name == "drop"
                    && d.sig_idx > start
                    && d.sig_idx < end
                    && sig.get(d.sig_idx + 2).map(|&ti| &tokens[ti]).is_some_and(|a| a.is_ident(src, name))
                {
                    end = d.sig_idx;
                    break;
                }
            }
        }
        out.push(GuardSpan { lock_id, start_sig: start, end_sig: end, line: c.line, col: c.col });
    }
    out
}

/// The symbol pass for one file: fn facts (name + callee set, test code
/// excluded) and lock-acquisition edges for the workspace graph.
pub fn analyze_file(
    rel: &str,
    src: &str,
    tokens: &[Token],
    sig: &[usize],
    tree: &ScopeTree,
    in_test: &dyn Fn(usize) -> bool,
) -> FileFacts {
    let mut facts = FileFacts { rel: rel.to_string(), ..Default::default() };
    for fn_id in tree.fn_scopes() {
        let scope = &tree.scopes[fn_id];
        let open_tok = sig.get(scope.open_sig).map(|&ti| &tokens[ti]);
        if open_tok.is_some_and(|t| in_test(t.start)) {
            continue;
        }
        let calls: BTreeSet<String> = call_sites(src, tokens, sig, scope.open_sig, scope.close_sig)
            .into_iter()
            .filter(|c| !c.name.ends_with('!'))
            .map(|c| c.name)
            .collect();
        for g in guard_spans(src, tokens, sig, tree, fn_id) {
            for c in locks_taken_under(src, tokens, sig, tree, fn_id, &g) {
                facts.lock_edges.push(LockEdge {
                    from: g.lock_id.clone(),
                    to: c,
                    rel: rel.to_string(),
                    line: g.line,
                    col: g.col,
                });
            }
        }
        facts.fns.push(FnFacts { name: scope.name.clone(), calls });
    }
    facts
}

/// `.lock()` acquisitions inside a live guard span → target lock ids.
fn locks_taken_under(
    src: &str,
    tokens: &[Token],
    sig: &[usize],
    tree: &ScopeTree,
    fn_id: usize,
    g: &GuardSpan,
) -> Vec<String> {
    let owner = tree.owner_name(fn_id).map(|s| s.to_string());
    call_sites(src, tokens, sig, g.start_sig, g.end_sig)
        .into_iter()
        .filter(|c| c.name == "lock" && c.args_empty && c.sig_idx > g.start_sig)
        .map(|c| lock_identity(c.receiver.as_deref().unwrap_or(""), owner.as_deref()))
        .filter(|id| *id != g.lock_id)
        .collect()
}

/// Cross-file analysis: the reachability fixpoint from the service-loop
/// roots plus the lock-order cycle set.
#[derive(Debug, Default)]
pub struct WorkspaceIndex {
    /// `(rel, fn_name)` pairs reachable from [`LOOP_ROOTS`] through the
    /// service-layer call graph (conservative: calls resolve by simple
    /// name to every service fn with that name).
    pub reachable: BTreeSet<(String, String)>,
    /// Lock edges that participate in an acquisition-order cycle.
    pub cycle_edges: Vec<LockEdge>,
}

/// The event-loop roots: the coordinator sweep and the worker serve loops.
/// Everything transitively called from these runs inside a loop whose
/// stalls block lease scheduling, so the blocking rules anchor here.
pub const LOOP_ROOTS: &[(&str, &str)] = &[
    ("crates/service/src/coordinator.rs", "drive"),
    ("crates/service/src/coordinator.rs", "await_spawned_connections"),
    ("crates/service/src/worker.rs", "serve"),
    ("crates/service/src/worker.rs", "run_socket_worker"),
];

/// Files whose fns participate in the service call graph.
pub fn in_service_scope(rel: &str) -> bool {
    rel.starts_with("crates/service/src/")
}

/// Build the workspace index from every file's facts.
pub fn build_index(files: &[FileFacts]) -> WorkspaceIndex {
    // Name → defining (rel, name) pairs, service scope only.
    let mut defs: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    let mut calls_of: BTreeMap<(&str, &str), &BTreeSet<String>> = BTreeMap::new();
    for f in files {
        if !in_service_scope(&f.rel) {
            continue;
        }
        for fun in &f.fns {
            defs.entry(fun.name.as_str()).or_default().push(f.rel.as_str());
            calls_of.insert((f.rel.as_str(), fun.name.as_str()), &fun.calls);
        }
    }
    let mut reachable: BTreeSet<(String, String)> = BTreeSet::new();
    let mut work: Vec<(String, String)> = LOOP_ROOTS
        .iter()
        .filter(|(rel, name)| calls_of.contains_key(&(*rel, *name)))
        .map(|(rel, name)| (rel.to_string(), name.to_string()))
        .collect();
    while let Some(key) = work.pop() {
        if !reachable.insert(key.clone()) {
            continue;
        }
        let Some(calls) = calls_of.get(&(key.0.as_str(), key.1.as_str())) else {
            continue;
        };
        for callee in calls.iter() {
            if let Some(rels) = defs.get(callee.as_str()) {
                for rel in rels {
                    let next = (rel.to_string(), callee.clone());
                    if !reachable.contains(&next) {
                        work.push(next);
                    }
                }
            }
        }
    }

    // Lock graph: adjacency over lock ids; an edge is cyclic iff its target
    // can reach its source.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    let all_edges: Vec<&LockEdge> = files.iter().flat_map(|f| f.lock_edges.iter()).collect();
    for e in &all_edges {
        adj.entry(e.from.as_str()).or_default().insert(e.to.as_str());
    }
    let reaches = |from: &str, target: &str| -> bool {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if n == target {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = adj.get(n) {
                stack.extend(next.iter().copied());
            }
        }
        false
    };
    let cycle_edges = all_edges
        .iter()
        .filter(|e| reaches(e.to.as_str(), e.from.as_str()))
        .map(|e| (*e).clone())
        .collect();

    WorkspaceIndex { reachable, cycle_edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::tree;

    fn facts(rel: &str, src: &str) -> FileFacts {
        let tokens = lex(src);
        let sig: Vec<usize> = (0..tokens.len()).filter(|&i| !tokens[i].is_comment()).collect();
        let t = tree::parse(src, &tokens, &sig);
        analyze_file(rel, src, &tokens, &sig, &t, &|_| false)
    }

    #[test]
    fn calls_are_attributed_per_fn() {
        let f = facts(
            "crates/service/src/coordinator.rs",
            "fn drive(&mut self) { self.sweep(); pump(); } fn other() { idle(); }",
        );
        assert_eq!(f.fns.len(), 2);
        assert!(f.fns[0].calls.contains("sweep"));
        assert!(f.fns[0].calls.contains("pump"));
        assert!(!f.fns[0].calls.contains("idle"));
    }

    #[test]
    fn fixpoint_crosses_files() {
        let a = facts(
            "crates/service/src/coordinator.rs",
            "fn drive(&mut self) { pump_events(); } fn pump_events() { next_frame(); }",
        );
        let b = facts(
            "crates/service/src/wire.rs",
            "fn next_frame() { fill(); } fn fill() {} fn unrelated() {}",
        );
        let idx = build_index(&[a, b]);
        let has = |rel: &str, name: &str| {
            idx.reachable.contains(&(rel.to_string(), name.to_string()))
        };
        assert!(has("crates/service/src/coordinator.rs", "drive"));
        assert!(has("crates/service/src/wire.rs", "next_frame"));
        assert!(has("crates/service/src/wire.rs", "fill"));
        assert!(!has("crates/service/src/wire.rs", "unrelated"));
    }

    #[test]
    fn non_service_files_stay_out_of_the_graph() {
        let a = facts("crates/service/src/coordinator.rs", "fn drive() { evaluate(); }");
        let b = facts("crates/core/src/evaluate.rs", "fn evaluate() { read_exact(); }");
        let idx = build_index(&[a, b]);
        assert!(!idx
            .reachable
            .contains(&("crates/core/src/evaluate.rs".to_string(), "evaluate".to_string())));
    }

    #[test]
    fn lock_edges_and_cycles() {
        let a = facts(
            "crates/service/src/x.rs",
            "impl A { fn f(&self) { let g = self.m1.lock(); let h = self.m2.lock(); use_(g, h); } }",
        );
        let b = facts(
            "crates/service/src/y.rs",
            "impl A { fn g(&self) { let g = self.m2.lock(); let h = self.m1.lock(); use_(g, h); } }",
        );
        assert_eq!(a.lock_edges.len(), 1);
        assert_eq!(a.lock_edges[0].from, "A.m1");
        assert_eq!(a.lock_edges[0].to, "A.m2");
        let idx = build_index(&[a.clone(), b]);
        assert_eq!(idx.cycle_edges.len(), 2, "both edges of the A.m1 <-> A.m2 cycle");
        let one_way = build_index(&[a]);
        assert!(one_way.cycle_edges.is_empty(), "a single ordering is not a cycle");
    }

    #[test]
    fn guard_span_ends_at_drop() {
        let src = "impl A { fn f(&self) { let g = self.m.lock(); touch(); drop(g); self.n.lock(); } }";
        let f = facts("crates/service/src/x.rs", src);
        assert!(f.lock_edges.is_empty(), "acquisition after drop(g) is not nested: {:?}", f.lock_edges);
    }

    #[test]
    fn temporary_guard_spans_its_statement_only() {
        let src = "impl A { fn f(&self) { *self.m.lock() = 1; self.n.lock(); } }";
        let f = facts("crates/service/src/x.rs", src);
        assert!(f.lock_edges.is_empty(), "{:?}", f.lock_edges);
    }
}
