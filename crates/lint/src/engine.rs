//! Rule engine: file context (tokens, test regions, suppressions),
//! diagnostics, and the per-file check driver.

use crate::flow::{self, FileFacts, WorkspaceIndex};
use crate::lexer::{lex, TokKind, Token};
use crate::rules::Rule;
use crate::tree::ScopeTree;
use std::collections::HashMap;
use std::fmt;
use std::path::{Path, PathBuf};

/// How hard a rule fails by default. `--deny warnings` promotes `Warn` to
/// `Deny` at report time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    Warn,
    Deny,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warn => "warning",
            Severity::Deny => "error",
        })
    }
}

/// One finding, pointing at the first token of the offending pattern.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    pub rule: &'static str,
    pub severity: Severity,
    pub file: PathBuf,
    pub line: u32,
    pub col: u32,
    pub message: String,
}

/// An inline `// lint: allow(<rule>): <reason>` marker.
#[derive(Debug, Clone)]
pub struct Suppression {
    pub rule: String,
    pub reason: String,
    pub line: u32,
}

/// A `// lint: zone(<name>): <reason>` marker: opts the rest of the file
/// into a stricter zone (e.g. `no-indexing` tightens `no-unaudited-panic`
/// to also ban slice indexing, which panics on out-of-bounds).
#[derive(Debug, Clone)]
pub struct Zone {
    pub name: String,
    pub line: u32,
}

/// Everything a rule needs to scan one file.
pub struct FileCtx<'s> {
    pub path: &'s Path,
    /// Workspace-relative path with `/` separators, for scope decisions.
    pub rel: String,
    pub src: &'s str,
    /// All tokens, comments included.
    pub tokens: &'s [Token],
    /// Indices into `tokens` of non-comment tokens — what rules scan.
    pub sig: &'s [usize],
    /// Byte ranges covered by `#[cfg(test)]` items or `#[test]` functions.
    test_regions: &'s [(usize, usize)],
    /// True when the whole file is test code (under a `tests/` directory).
    pub file_is_test: bool,
    /// Active `lint: zone(...)` markers (each covers its line to EOF).
    pub zones: &'s [Zone],
    /// Brace-tree scope structure (modules, fns, impls, nested blocks).
    pub tree: &'s ScopeTree,
    /// Cross-file analysis: loop reachability and lock-cycle edges. For a
    /// single-file check this is built from that file alone.
    pub index: &'s WorkspaceIndex,
}

impl FileCtx<'_> {
    /// Is `line` inside an active zone named `name`?
    pub fn in_zone(&self, name: &str, line: u32) -> bool {
        self.zones.iter().any(|z| z.name == name && line >= z.line)
    }
}

impl FileCtx<'_> {
    /// Is the byte offset inside test code (a `#[cfg(test)]` region, a
    /// `#[test]` fn, or a file that is a test target)?
    pub fn in_test_code(&self, offset: usize) -> bool {
        self.file_is_test || self.test_regions.iter().any(|&(s, e)| offset >= s && offset < e)
    }

    /// The significant token at `sig` position `i`, if any.
    pub fn sig_tok(&self, i: usize) -> Option<&Token> {
        self.sig.get(i).map(|&ti| &self.tokens[ti])
    }

    /// Given the `sig` index of an opening bracket, return the `sig` index
    /// of its matching close. Brackets inside strings/comments cannot
    /// interfere — the lexer already swallowed them.
    pub fn matching_close(&self, open_sig: usize, open: char, close: char) -> Option<usize> {
        let mut depth = 0usize;
        for i in open_sig..self.sig.len() {
            let t = &self.tokens[self.sig[i]];
            if t.is_punct(self.src, open) {
                depth += 1;
            } else if t.is_punct(self.src, close) {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
        }
        None
    }
}

/// Per-file scan product: what fired, what was suppressed, and any stale or
/// malformed suppression markers.
#[derive(Debug, Default)]
pub struct FileReport {
    pub diagnostics: Vec<Diagnostic>,
    /// (rule, line) pairs that a `lint: allow` absorbed.
    pub suppressed: Vec<(String, u32)>,
}

/// Parse every `// lint: allow(rule): reason` line comment. Returns the
/// suppressions plus diagnostics for malformed markers (an allow without a
/// reason is itself a violation — the reason is the audit trail).
fn parse_suppressions(
    path: &Path,
    src: &str,
    tokens: &[Token],
) -> (Vec<Suppression>, Vec<Zone>, Vec<Diagnostic>) {
    let mut sups = Vec::new();
    let mut zones = Vec::new();
    let mut diags = Vec::new();
    for t in tokens {
        if t.kind != TokKind::LineComment {
            continue;
        }
        let text = t.text(src);
        let Some(rest) = text.trim_start_matches('/').trim_start().strip_prefix("lint:") else {
            continue;
        };
        let rest = rest.trim_start();
        if let Some(z) = rest.strip_prefix("zone") {
            match z.trim_start().strip_prefix('(').and_then(|r| r.split_once(')')) {
                Some((name, after)) if after.trim_start().starts_with(':') => {
                    zones.push(Zone { name: name.trim().to_string(), line: t.line });
                }
                _ => diags.push(Diagnostic {
                    rule: "lint-marker",
                    severity: Severity::Deny,
                    file: path.to_path_buf(),
                    line: t.line,
                    col: t.col,
                    message: "malformed zone marker; use `lint: zone(<name>): <reason>`".into(),
                }),
            }
            continue;
        }
        let Some(rest) = rest.strip_prefix("allow") else {
            // Reserved namespace: anything else under `lint:` is a typo'd
            // marker that would otherwise silently not suppress.
            diags.push(Diagnostic {
                rule: "lint-marker",
                severity: Severity::Deny,
                file: path.to_path_buf(),
                line: t.line,
                col: t.col,
                message: format!("unrecognized lint marker {text:?}; expected `lint: allow(<rule>): <reason>`"),
            });
            continue;
        };
        let rest = rest.trim_start();
        let ok = rest.strip_prefix('(').and_then(|r| r.split_once(')')).and_then(
            |(rule, after)| {
                let reason = after.trim_start().strip_prefix(':')?.trim();
                (!rule.trim().is_empty() && !reason.is_empty())
                    .then(|| (rule.trim().to_string(), reason.to_string()))
            },
        );
        match ok {
            Some((rule, reason)) => sups.push(Suppression { rule, reason, line: t.line }),
            None => diags.push(Diagnostic {
                rule: "lint-marker",
                severity: Severity::Deny,
                file: path.to_path_buf(),
                line: t.line,
                col: t.col,
                message: "malformed suppression; use `lint: allow(<rule>): <reason>` with a non-empty reason".into(),
            }),
        }
    }
    (sups, zones, diags)
}

/// Flag surviving `// audited:` markers: the grep-era allowlist this linter
/// supersedes. They no longer suppress anything, so leaving one in place is
/// a silent hole in the audit trail.
fn stale_audit_markers(path: &Path, src: &str, tokens: &[Token]) -> Vec<Diagnostic> {
    tokens
        .iter()
        .filter(|t| {
            // Marker position only: `// audited: reason`. A comment that
            // merely *mentions* the old syntax mid-sentence is not a marker.
            t.is_comment()
                && t.text(src).trim_start_matches(['/', '*', '!']).trim_start().starts_with("audited:")
        })
        .map(|t| Diagnostic {
            rule: "stale-audit-marker",
            severity: Severity::Deny,
            file: path.to_path_buf(),
            line: t.line,
            col: t.col,
            message: "legacy `// audited:` marker no longer suppresses anything; migrate to `// lint: allow(no-unaudited-panic): <reason>`"
                .into(),
        })
        .collect()
}

/// Compute byte ranges of `#[cfg(test)]` items and `#[test]` functions by
/// walking the significant token stream: match the attribute, skip any
/// further attributes, then span to the end of the next item (matched `{…}`
/// block or terminating `;`).
fn test_regions(src: &str, tokens: &[Token], sig: &[usize]) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let tok = |i: usize| -> &Token { &tokens[sig[i]] };
    let mut i = 0usize;
    while i < sig.len() {
        if !tok(i).is_punct(src, '#') {
            i += 1;
            continue;
        }
        let attr_start = tok(i).start;
        // `#[…]` — find the bracket span first.
        let Some(open) = (i + 1 < sig.len() && tok(i + 1).is_punct(src, '[')).then_some(i + 1)
        else {
            i += 1;
            continue;
        };
        let Some(close) = matching_close_at(src, tokens, sig, open, '[', ']') else {
            break;
        };
        if !attr_is_test(src, tokens, &sig[open + 1..close]) {
            i = close + 1;
            continue;
        }
        // Skip any stacked attributes after the test one.
        let mut j = close + 1;
        while j + 1 < sig.len() && tok(j).is_punct(src, '#') && tok(j + 1).is_punct(src, '[') {
            match matching_close_at(src, tokens, sig, j + 1, '[', ']') {
                Some(c) => j = c + 1,
                None => break,
            }
        }
        // Item body: first top-level `{` matched to its close, or a `;`
        // before any brace (e.g. `#[cfg(test)] use …;`).
        let mut end = None;
        let mut k = j;
        while k < sig.len() {
            let t = tok(k);
            if t.is_punct(src, ';') {
                end = Some(t.end);
                break;
            }
            if t.is_punct(src, '{') {
                end = matching_close_at(src, tokens, sig, k, '{', '}')
                    .map(|c| tokens[sig[c]].end);
                break;
            }
            k += 1;
        }
        match end {
            Some(e) => {
                regions.push((attr_start, e));
                i = close + 1;
            }
            None => {
                // Unterminated item: everything to EOF is the region.
                regions.push((attr_start, src.len()));
                break;
            }
        }
    }
    regions
}

/// Does the attribute token slice (between `[` and `]`) spell `cfg(test)`
/// (possibly `cfg(all(test, …))`) or bare `test`?
fn attr_is_test(src: &str, tokens: &[Token], inner: &[usize]) -> bool {
    let ids: Vec<&str> = inner
        .iter()
        .map(|&ti| &tokens[ti])
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text(src))
        .collect();
    match ids.as_slice() {
        ["test"] => true,
        [first, rest @ ..] if *first == "cfg" => rest.contains(&"test"),
        _ => false,
    }
}

fn matching_close_at(
    src: &str,
    tokens: &[Token],
    sig: &[usize],
    open_sig: usize,
    open: char,
    close: char,
) -> Option<usize> {
    let mut depth = 0usize;
    for i in open_sig..sig.len() {
        let t = &tokens[sig[i]];
        if t.is_punct(src, open) {
            depth += 1;
        } else if t.is_punct(src, close) {
            depth -= 1;
            if depth == 0 {
                return Some(i);
            }
        }
    }
    None
}

/// Phase-1 product for one file: everything derivable without seeing the
/// rest of the workspace. The workspace scan analyzes every file first,
/// builds the cross-file [`WorkspaceIndex`] from the collected
/// [`FileFacts`], then runs rules (phase 2) with that index in scope.
pub struct Analyzed {
    pub path: PathBuf,
    pub rel: String,
    pub src: String,
    pub file_is_test: bool,
    tokens: Vec<Token>,
    sig: Vec<usize>,
    test_regions: Vec<(usize, usize)>,
    tree: ScopeTree,
    pub facts: FileFacts,
}

/// Phase 1: lex, locate test regions, build the brace tree, and run the
/// symbol pass.
pub fn analyze(path: &Path, rel: &str, src: String, file_is_test: bool) -> Analyzed {
    let tokens = lex(&src);
    let sig: Vec<usize> = (0..tokens.len()).filter(|&i| !tokens[i].is_comment()).collect();
    let regions = test_regions(&src, &tokens, &sig);
    let tree = crate::tree::parse(&src, &tokens, &sig);
    let in_test = |offset: usize| {
        file_is_test || regions.iter().any(|&(s, e)| offset >= s && offset < e)
    };
    let facts = flow::analyze_file(rel, &src, &tokens, &sig, &tree, &in_test);
    Analyzed {
        path: path.to_path_buf(),
        rel: rel.to_string(),
        src,
        file_is_test,
        tokens,
        sig,
        test_regions: regions,
        tree,
        facts,
    }
}

/// Run `rules` over one file's source in isolation: the cross-file index
/// is built from this file alone. `rel` is the workspace-relative path
/// (used for rule scoping); `file_is_test` marks whole-file test targets.
pub fn check_file(
    path: &Path,
    rel: &str,
    src: &str,
    rules: &[Box<dyn Rule>],
    file_is_test: bool,
) -> FileReport {
    let analyzed = analyze(path, rel, src.to_string(), file_is_test);
    let index = flow::build_index(std::slice::from_ref(&analyzed.facts));
    check_analyzed(&analyzed, rules, &index)
}

/// Phase 2: run `rules` over an analyzed file with the workspace index in
/// scope, then apply suppressions.
pub fn check_analyzed(
    a: &Analyzed,
    rules: &[Box<dyn Rule>],
    index: &WorkspaceIndex,
) -> FileReport {
    let (path, src) = (a.path.as_path(), a.src.as_str());
    let (tokens, sig) = (&a.tokens, &a.sig);
    let (sups, zones, mut marker_diags) = parse_suppressions(path, src, tokens);
    marker_diags.extend(stale_audit_markers(path, src, tokens));

    // Warn on allows naming no known rule — a typo'd rule name suppresses
    // nothing and should not pass silently.
    let known: Vec<&str> = rules.iter().map(|r| r.name()).collect();
    for s in &sups {
        if !known.contains(&s.rule.as_str()) {
            marker_diags.push(Diagnostic {
                rule: "lint-marker",
                severity: Severity::Deny,
                file: path.to_path_buf(),
                line: s.line,
                col: 1,
                message: format!("`lint: allow({})` names no known rule", s.rule),
            });
        }
    }

    let ctx = FileCtx {
        path,
        rel: a.rel.clone(),
        src,
        tokens,
        sig,
        test_regions: &a.test_regions,
        file_is_test: a.file_is_test,
        zones: &zones,
        tree: &a.tree,
        index,
    };

    let mut raw = Vec::new();
    for rule in rules {
        rule.check(&ctx, &mut raw);
    }

    // A suppression absorbs a diagnostic of its rule on the same line or
    // the line directly below the marker (marker-above-the-statement form).
    let mut by_line: HashMap<(u32, &str), &Suppression> = HashMap::new();
    for s in &sups {
        by_line.insert((s.line, s.rule.as_str()), s);
        by_line.insert((s.line + 1, s.rule.as_str()), s);
    }

    let mut report = FileReport::default();
    for d in raw {
        match by_line.get(&(d.line, d.rule)) {
            Some(s) => report.suppressed.push((s.rule.clone(), d.line)),
            None => report.diagnostics.push(d),
        }
    }
    report.diagnostics.extend(marker_diags);
    report.diagnostics.sort_by_key(|d| (d.line, d.col, d.rule));
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::default_rules;

    fn run(src: &str) -> FileReport {
        check_file(Path::new("crates/demo/src/x.rs"), "crates/demo/src/x.rs", src, &default_rules(), false)
    }

    #[test]
    fn cfg_test_region_excludes_panics() {
        let src = "fn a() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n  fn b() { y.unwrap(); }\n}\n";
        let r = run(src);
        let hits: Vec<_> =
            r.diagnostics.iter().filter(|d| d.rule == "no-unaudited-panic").collect();
        assert_eq!(hits.len(), 1, "{:?}", r.diagnostics);
        assert_eq!(hits[0].line, 1);
    }

    #[test]
    fn test_attr_fn_excluded() {
        let src = "#[test]\nfn t() { q.unwrap(); }\nfn real() { q.unwrap(); }\n";
        let r = run(src);
        let hits: Vec<_> =
            r.diagnostics.iter().filter(|d| d.rule == "no-unaudited-panic").collect();
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].line, 3);
    }

    #[test]
    fn same_line_suppression_counts() {
        let src = "fn a() { x.unwrap(); // lint: allow(no-unaudited-panic): guarded above\n}\n";
        let r = run(src);
        assert!(r.diagnostics.iter().all(|d| d.rule != "no-unaudited-panic"));
        assert_eq!(r.suppressed.len(), 1);
    }

    #[test]
    fn line_above_suppression_counts() {
        let src = "fn a() {\n  // lint: allow(no-unaudited-panic): infallible by construction\n  x.unwrap();\n}\n";
        let r = run(src);
        assert!(r.diagnostics.iter().all(|d| d.rule != "no-unaudited-panic"));
    }

    #[test]
    fn reasonless_allow_is_rejected() {
        let src = "fn a() { x.unwrap(); // lint: allow(no-unaudited-panic)\n}\n";
        let r = run(src);
        assert!(r.diagnostics.iter().any(|d| d.rule == "lint-marker"));
        assert!(r.diagnostics.iter().any(|d| d.rule == "no-unaudited-panic"));
    }

    #[test]
    fn stale_audited_marker_flagged() {
        let src = "fn a() { x.expect(\"fine\") // audited: cannot fail\n; }\n";
        let r = run(src);
        assert!(r.diagnostics.iter().any(|d| d.rule == "stale-audit-marker"));
    }

    #[test]
    fn unknown_rule_in_allow_flagged() {
        let src = "// lint: allow(no-such-rule): because\nfn a() {}\n";
        let r = run(src);
        assert!(r.diagnostics.iter().any(|d| d.rule == "lint-marker"));
    }
}
