//! Snapshot test pinning the `--json` report schema.
//!
//! Downstream tooling (the CI ratchet, editor integrations) parses this
//! output, so the shape — key names, nesting, diagnostic fields, the
//! suppressed-count map — is a contract. A deliberate schema change must
//! update this snapshot in the same PR.

use hm_lint::rules::default_rules;
use hm_lint::{render_json, scan_sources};
use std::path::{Path, PathBuf};

#[test]
fn json_report_schema_is_pinned() {
    let rel = "crates/core/src/snapshot_fixture.rs";
    let src = "\
fn f(x: Option<u32>) -> u32 {
    x.unwrap()
}

fn g(y: Option<u32>) -> u32 {
    // lint: allow(no-unaudited-panic): snapshot fixture — exercises the suppressed map
    y.unwrap()
}
";
    let report = scan_sources(
        vec![(PathBuf::from(rel), rel.to_string(), src.to_string())],
        &default_rules(),
    );
    let json = render_json(&report, Path::new("."));
    let expected = r#"{
  "files_scanned": 1,
  "errors": 1,
  "warnings": 0,
  "diagnostics": [
    {"file": "crates/core/src/snapshot_fixture.rs", "line": 2, "col": 7, "rule": "no-unaudited-panic", "severity": "error", "message": "`.unwrap()` in non-test code; return an error, recover, or add `// lint: allow(no-unaudited-panic): <reason>`"}
  ],
  "suppressed": {"no-unaudited-panic": 1}
}
"#;
    assert_eq!(
        json, expected,
        "--json schema drifted; if deliberate, update this snapshot\n--- actual ---\n{json}"
    );
}

#[test]
fn json_escapes_are_wellformed() {
    // Quotes and backslashes in messages/paths must arrive escaped; a
    // clean report keeps the same top-level shape with an empty list.
    let rel = "crates/core/src/clean.rs";
    let src = "fn ok() -> u32 { 1 }\n";
    let report = scan_sources(
        vec![(PathBuf::from(rel), rel.to_string(), src.to_string())],
        &default_rules(),
    );
    let json = render_json(&report, Path::new("."));
    assert!(json.starts_with("{\n  \"files_scanned\": 1,\n"));
    assert!(json.contains("  \"diagnostics\": [\n  ],\n"));
    assert!(json.contains("\"suppressed\": {}"));
    assert!(json.ends_with("}\n"));
}
