//! Per-rule fixture harness: every rule fires on its positive fixture,
//! stays silent on its negative fixture (the grep-killers live there —
//! `.unwrap()` inside string literals, raw strings, nested block comments),
//! and is absorbed by `lint: allow` markers in its suppressed fixture.
//!
//! Fixture files live under `tests/fixtures/<rule>/`; that directory is in
//! the engine's skip list, so the deliberately violation-laden positives
//! never trip the workspace self-lint.

use hm_lint::engine::check_file;
use hm_lint::rules::default_rules;
use std::path::{Path, PathBuf};

struct Case {
    rule: &'static str,
    fixture: &'static str,
    /// Workspace-relative path the fixture pretends to live at — several
    /// rules are path-scoped.
    rel: &'static str,
    expect_diags: usize,
    expect_suppressed: usize,
}

const CASES: &[Case] = &[
    Case {
        rule: "no-unaudited-panic",
        fixture: "positive.rs",
        rel: "crates/core/src/fixture.rs",
        expect_diags: 4, // unwrap, expect, panic!, todo!
        expect_suppressed: 0,
    },
    Case {
        rule: "no-unaudited-panic",
        fixture: "negative.rs",
        rel: "crates/core/src/fixture.rs",
        expect_diags: 0,
        expect_suppressed: 0,
    },
    Case {
        rule: "no-unaudited-panic",
        fixture: "suppressed.rs",
        rel: "crates/core/src/fixture.rs",
        expect_diags: 0,
        expect_suppressed: 2, // line-above and same-line markers
    },
    Case {
        rule: "nan-unsafe-cmp",
        fixture: "positive.rs",
        rel: "crates/kfusion/src/fixture.rs",
        expect_diags: 2, // sort_by and min_by
        expect_suppressed: 0,
    },
    Case {
        rule: "nan-unsafe-cmp",
        fixture: "negative.rs",
        rel: "crates/kfusion/src/fixture.rs",
        expect_diags: 0,
        expect_suppressed: 0,
    },
    Case {
        rule: "nan-unsafe-cmp",
        fixture: "suppressed.rs",
        rel: "crates/kfusion/src/fixture.rs",
        expect_diags: 0,
        expect_suppressed: 1,
    },
    Case {
        rule: "wall-clock-outside-timing",
        fixture: "positive.rs",
        rel: "crates/core/src/fixture.rs",
        expect_diags: 2, // Instant::now and SystemTime
        expect_suppressed: 0,
    },
    Case {
        rule: "wall-clock-outside-timing",
        fixture: "negative.rs",
        // The designated timing module: wall-clock is the point there.
        rel: "crates/slambench/src/measure.rs",
        expect_diags: 0,
        expect_suppressed: 0,
    },
    Case {
        rule: "wall-clock-outside-timing",
        fixture: "suppressed.rs",
        rel: "crates/core/src/fixture.rs",
        expect_diags: 0,
        expect_suppressed: 1,
    },
    Case {
        rule: "nondeterministic-iteration",
        fixture: "positive.rs",
        rel: "crates/core/src/fixture.rs",
        expect_diags: 1, // by_name.values()
        expect_suppressed: 0,
    },
    Case {
        rule: "nondeterministic-iteration",
        fixture: "negative.rs",
        rel: "crates/forest/src/fixture.rs",
        expect_diags: 0,
        expect_suppressed: 0,
    },
    Case {
        rule: "nondeterministic-iteration",
        fixture: "suppressed.rs",
        rel: "crates/core/src/fixture.rs",
        expect_diags: 0,
        expect_suppressed: 1,
    },
    Case {
        rule: "float-env",
        fixture: "positive.rs",
        rel: "crates/core/src/fixture.rs",
        expect_diags: 2, // lossy format spec and parse::<f64>
        expect_suppressed: 0,
    },
    Case {
        rule: "float-env",
        fixture: "negative.rs",
        rel: "crates/core/src/fixture.rs",
        expect_diags: 0,
        expect_suppressed: 0,
    },
    Case {
        rule: "float-env",
        fixture: "suppressed.rs",
        rel: "crates/core/src/fixture.rs",
        expect_diags: 0,
        expect_suppressed: 1,
    },
    Case {
        rule: "lock-order",
        fixture: "positive.rs",
        rel: "crates/service/src/fixture.rs",
        expect_diags: 3, // both cycle edges + recv under a live guard
        expect_suppressed: 0,
    },
    Case {
        rule: "lock-order",
        fixture: "negative.rs",
        rel: "crates/service/src/fixture.rs",
        expect_diags: 0,
        expect_suppressed: 0,
    },
    Case {
        rule: "lock-order",
        fixture: "suppressed.rs",
        rel: "crates/service/src/fixture.rs",
        expect_diags: 0,
        expect_suppressed: 1,
    },
    Case {
        rule: "blocking-without-deadline",
        fixture: "positive.rs",
        // A loop-root file: reachability starts at `drive`.
        rel: "crates/service/src/coordinator.rs",
        expect_diags: 3, // recv in drive, read_exact via helper, read behind set_read_timeout(None)
        expect_suppressed: 0,
    },
    Case {
        rule: "blocking-without-deadline",
        fixture: "negative.rs",
        rel: "crates/service/src/coordinator.rs",
        expect_diags: 0,
        expect_suppressed: 0,
    },
    Case {
        rule: "blocking-without-deadline",
        fixture: "suppressed.rs",
        rel: "crates/service/src/coordinator.rs",
        expect_diags: 0,
        expect_suppressed: 1,
    },
    Case {
        rule: "wire-unchecked-arith",
        fixture: "positive.rs",
        rel: "crates/service/src/fixture.rs",
        expect_diags: 3, // `+`, `*`, and the `as` cast
        expect_suppressed: 0,
    },
    Case {
        rule: "wire-unchecked-arith",
        fixture: "negative.rs",
        rel: "crates/service/src/fixture.rs",
        expect_diags: 0,
        expect_suppressed: 0,
    },
    Case {
        rule: "wire-unchecked-arith",
        fixture: "suppressed.rs",
        rel: "crates/service/src/fixture.rs",
        expect_diags: 0,
        expect_suppressed: 1,
    },
];

fn fixture_path(rule: &str, file: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(rule).join(file)
}

#[test]
fn every_rule_has_all_three_fixtures() {
    for rule in ["no-unaudited-panic", "nan-unsafe-cmp", "wall-clock-outside-timing",
                 "nondeterministic-iteration", "float-env", "lock-order",
                 "blocking-without-deadline", "wire-unchecked-arith"] {
        for file in ["positive.rs", "negative.rs", "suppressed.rs"] {
            assert!(
                fixture_path(rule, file).is_file(),
                "missing fixture {rule}/{file}"
            );
        }
    }
}

#[test]
fn fixtures_behave_as_labelled() {
    let rules = default_rules();
    for case in CASES {
        let path = fixture_path(case.rule, case.fixture);
        let src = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        let report = check_file(&path, case.rel, &src, &rules, false);
        let diags = report.diagnostics.iter().filter(|d| d.rule == case.rule).count();
        let suppressed =
            report.suppressed.iter().filter(|(rule, _)| rule == case.rule).count();
        assert_eq!(
            diags, case.expect_diags,
            "{}/{}: expected {} diagnostics for {}, got {} — {:?}",
            case.rule, case.fixture, case.expect_diags, case.rule, diags, report.diagnostics
        );
        assert_eq!(
            suppressed, case.expect_suppressed,
            "{}/{}: expected {} suppressions, got {:?}",
            case.rule, case.fixture, case.expect_suppressed, report.suppressed
        );
        // No fixture may produce a malformed-marker or stale-marker
        // engine diagnostic.
        assert!(
            report.diagnostics.iter().all(|d| d.rule != "lint-marker"
                && d.rule != "stale-audit-marker"),
            "{}/{}: engine flagged a marker: {:?}",
            case.rule, case.fixture, report.diagnostics
        );
    }
}
