//! The workspace must lint clean at deny level — the same bar
//! `scripts/ci.sh lint` enforces in CI, asserted here so `cargo test`
//! alone catches a regression.

use hm_lint::{deny_warnings, render_human, rules, scan_workspace};
use std::path::Path;

#[test]
fn workspace_is_clean_at_deny_level() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let mut report =
        scan_workspace(&root, &rules::default_rules()).expect("scan workspace");
    deny_warnings(&mut report);
    assert!(
        report.diagnostics.is_empty(),
        "workspace has lint violations at deny level:\n{}",
        render_human(&report, &root)
    );
    // Sanity: the scan actually covered the workspace, not an empty dir.
    assert!(
        report.files_scanned > 50,
        "scan unexpectedly small: {} files",
        report.files_scanned
    );
    // Suppressions exist (the audited panic bridges); the exact count is
    // ROADMAP burn-down data, not an invariant.
    assert!(report.suppressed.contains_key("no-unaudited-panic"));
}
