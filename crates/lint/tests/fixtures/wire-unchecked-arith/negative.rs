//! Fixture: checked/saturating arithmetic and `try_from` are the legal
//! forms inside the zone; lengthish arithmetic before the marker is out of
//! scope, and non-length operands stay legal. Grep-killers at the bottom.

fn pre_zone(len: usize) -> usize {
    len + 1
}

// lint: zone(wire-frame): fixture — everything below handles wire lengths

fn frame_end(len: usize, offset: usize) -> Option<usize> {
    offset.checked_add(len)
}

fn padded(len: usize) -> usize {
    len.saturating_mul(2)
}

fn header_field(len: usize) -> Option<u32> {
    u32::try_from(len).ok()
}

fn not_a_length(x: f64, y: f64) -> f64 {
    x + y
}

// Grep-killers: zone-violating text in a string and comments only.
fn strings() -> &'static str {
    // let end = offset + len; let short = len as u32;
    " offset + len * 2 "
}
/* let end = self.scanned + pos; */
