//! Fixture: unchecked `+`/`*` on length fields and an `as` narrowing cast
//! inside a wire-frame zone.
// lint: zone(wire-frame): fixture — header fields arrive off the wire

fn frame_end(len: usize, offset: usize) -> usize {
    offset + len
}

fn padded(len: usize) -> usize {
    len * 2
}

fn header_field(len: usize) -> u32 {
    len as u32
}
