//! Fixture: arithmetic whose bounds are proven elsewhere may be
//! suppressed with the proof.
// lint: zone(wire-frame): fixture

fn frame_end(len: usize, offset: usize) -> usize {
    // lint: allow(wire-unchecked-arith): fixture — caller clamps len to MAX_FRAME_LEN
    offset + len
}
