//! Fixture: an audited block-under-guard may be suppressed with its
//! justification.

use std::sync::mpsc::Receiver;
use std::sync::Mutex;

struct Pool {
    a: Mutex<u32>,
}

impl Pool {
    fn parked(&self, rx: &Receiver<u32>) {
        let g = self.a.lock().unwrap();
        // lint: allow(lock-order): fixture — sender is on the same thread, recv cannot park
        let _ = rx.recv();
        drop(g);
    }
}
