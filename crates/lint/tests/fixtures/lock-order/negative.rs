//! Fixture: consistent acquisition order, `Condvar::wait(guard)` (which
//! releases the lock while parked), bounded waits, and drop-before-block
//! are all legal. Grep-killers: the violation text below lives only in
//! strings and comments.

use std::sync::mpsc::Receiver;
use std::sync::{Condvar, Mutex};
use std::time::Duration;

struct Cell {
    m: Mutex<bool>,
    cv: Condvar,
}

impl Cell {
    fn consistent(&self, other: &Mutex<u32>) {
        let g = self.m.lock().unwrap();
        let h = other.lock().unwrap();
        drop(h);
        drop(g);
    }

    fn consistent_again(&self, other: &Mutex<u32>) {
        let g = self.m.lock().unwrap();
        let h = other.lock().unwrap();
        drop(h);
        drop(g);
    }

    fn wait_releases(&self) {
        let mut g = self.m.lock().unwrap();
        while !*g {
            g = self.cv.wait(g).unwrap();
        }
    }

    fn bounded(&self, rx: &Receiver<u32>) {
        let g = self.m.lock().unwrap();
        let _ = rx.recv_timeout(Duration::from_millis(10));
        drop(g);
    }

    fn drop_first(&self, rx: &Receiver<u32>) {
        let g = self.m.lock().unwrap();
        drop(g);
        let _ = rx.recv();
    }
}

// Grep-killers: `lock` + blocking-call text that never executes.
fn strings() -> (&'static str, &'static str) {
    (
        " let g = self.m.lock().unwrap(); rx.recv(); ",
        r#"fn fake() { let g = a.lock(); let h = b.lock(); child.wait(); }"#,
    )
}
// let g = self.m.lock().unwrap(); child.wait();
/* let gb = self.b.lock(); let ga = self.a.lock(); */
