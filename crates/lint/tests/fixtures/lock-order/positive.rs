//! Fixture: an acquisition-order cycle between two mutexes in the same
//! impl, plus an unbounded `recv()` while a guard is live.

use std::sync::mpsc::Receiver;
use std::sync::Mutex;

struct Pool {
    a: Mutex<u32>,
    b: Mutex<u32>,
}

impl Pool {
    fn forward(&self) {
        let ga = self.a.lock().unwrap();
        let gb = self.b.lock().unwrap();
        drop(gb);
        drop(ga);
    }

    fn backward(&self) {
        let gb = self.b.lock().unwrap();
        let ga = self.a.lock().unwrap();
        drop(ga);
        drop(gb);
    }

    fn parked(&self, rx: &Receiver<u32>) {
        let g = self.a.lock().unwrap();
        let _ = rx.recv();
        drop(g);
    }
}
