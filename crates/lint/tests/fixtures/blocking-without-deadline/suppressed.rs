//! Fixture: an audited bare read on a reachable path may be suppressed
//! with its justification.

use std::io::Read;
use std::net::TcpStream;

fn drive(stream: &mut TcpStream) {
    legacy(stream);
}

fn legacy(stream: &mut TcpStream) {
    let mut buf = [0u8; 4];
    // lint: allow(blocking-without-deadline): fixture — peer writes eagerly before we read
    let _ = stream.read_exact(&mut buf);
}
