//! Fixture: bare blocking I/O reachable from the coordinator sweep —
//! directly in `drive`, transitively through a helper, and behind an
//! explicit `set_read_timeout(None)` (unbounding is not evidence).

use std::io::Read;
use std::net::TcpStream;
use std::sync::mpsc::Receiver;

fn drive(rx: &Receiver<u32>, stream: &mut TcpStream) {
    let _ = rx.recv();
    pump(stream);
    unbound(stream);
}

fn pump(stream: &mut TcpStream) {
    let mut buf = [0u8; 4];
    let _ = stream.read_exact(&mut buf);
}

fn unbound(stream: &mut TcpStream) {
    let _ = stream.set_read_timeout(None);
    let mut body = Vec::new();
    let _ = stream.read_to_end(&mut body);
}
