//! Fixture: reachable I/O is fine when the fn arms a deadline itself,
//! uses a `_timeout` variant, follows the kill-then-reap idiom, or is not
//! reachable from a loop root at all. Grep-killers at the bottom.

use std::io::Read;
use std::net::TcpStream;
use std::process::Child;
use std::sync::mpsc::Receiver;
use std::time::Duration;

fn drive(rx: &Receiver<u32>, stream: &mut TcpStream, child: &mut Child) {
    armed(stream);
    bounded(rx);
    reap(child);
    log_for(rx);
}

fn armed(stream: &mut TcpStream) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(100)));
    let mut buf = [0u8; 4];
    let _ = stream.read_exact(&mut buf);
}

fn bounded(rx: &Receiver<u32>) {
    let _ = rx.recv_timeout(Duration::from_millis(50));
}

fn reap(child: &mut Child) {
    let _ = child.kill();
    let _ = child.wait();
}

fn not_reachable(stream: &mut TcpStream) {
    let mut s = String::new();
    let _ = stream.read_to_string(&mut s);
}

// Grep-killers: bare-I/O text in a string and a comment, inside a
// reachable fn.
fn log_for(_rx: &Receiver<u32>) -> &'static str {
    // let _ = stream.read_exact(&mut buf); rx.recv();
    " stream.read_to_end(&mut body); rx.recv(); "
}
