//! Fixture: wall-clock reads outside the timing modules fire.

fn elapsed() -> std::time::Duration {
    let t = std::time::Instant::now();
    t.elapsed()
}

fn epoch() -> u64 {
    let _now = std::time::SystemTime::now();
    0
}
