//! Fixture: a justified suppression absorbs the hit.

fn log_duration() -> u64 {
    // lint: allow(wall-clock-outside-timing): fixture — duration is logged only, never fed back
    let t = std::time::Instant::now();
    t.elapsed().as_millis() as u64
}
