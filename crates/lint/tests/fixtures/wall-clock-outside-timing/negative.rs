//! Fixture: the harness lints this file *as* the designated timing module
//! (`crates/slambench/src/measure.rs`), where wall-clock is the point.

fn measure<F: FnOnce()>(f: F) -> std::time::Duration {
    let t = std::time::Instant::now();
    f();
    t.elapsed()
}
