//! Fixture: hash-container iteration in a deterministic crate fires
//! (the harness lints this as `crates/core/src/…`).

use std::collections::HashMap;

struct Index {
    by_name: HashMap<String, u32>,
}

impl Index {
    fn all(&self) -> Vec<u32> {
        self.by_name.values().copied().collect()
    }
}
