//! Fixture: keyed lookup on hash containers stays legal in deterministic
//! crates — only iteration order is the hazard.

use std::collections::{HashMap, HashSet};

struct Cache {
    seen: HashSet<u64>,
    vals: HashMap<u64, f64>,
}

impl Cache {
    fn lookup(&mut self, k: u64) -> Option<f64> {
        if self.seen.contains(&k) {
            self.vals.get(&k).copied()
        } else {
            self.seen.insert(k);
            None
        }
    }
}
