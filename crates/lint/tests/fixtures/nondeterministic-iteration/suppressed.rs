//! Fixture: an order-independent fold over a hash container may be
//! suppressed with a reason.

use std::collections::HashMap;

fn count(m: &HashMap<u32, u32>) -> usize {
    // lint: allow(nondeterministic-iteration): fixture — count is order-independent
    m.keys().count()
}
