//! Fixture: a justified suppression absorbs the hit.

use std::cmp::Ordering;

fn sorts(v: &mut [f32]) {
    // lint: allow(nan-unsafe-cmp): fixture — inputs proven NaN-free upstream
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal));
}
