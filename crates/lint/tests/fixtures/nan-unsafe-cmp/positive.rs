//! Fixture: `partial_cmp` inside sorters fires, whatever the unwrap flavour.

use std::cmp::Ordering;

fn sorts(v: &mut [f64]) -> Option<f64> {
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal));
    v.iter().copied().min_by(|a, b| a.partial_cmp(b).unwrap_or(Ordering::Equal))
}
