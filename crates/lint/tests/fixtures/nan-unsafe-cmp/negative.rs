//! Fixture: total comparators are clean, and `partial_cmp` outside a
//! sorter is a legal three-way query.

use std::cmp::Ordering;

fn sorts(v: &mut [f64]) {
    v.sort_by(|a, b| a.total_cmp(b));
}

fn query(a: f64, b: f64) -> bool {
    a.partial_cmp(&b) == Some(Ordering::Less)
}
