//! Fixture: the bit-exact hex round-trip is the sanctioned idiom.
// lint: zone(float-exact): fixture — bit-exact encode/decode

fn encode(v: f64) -> String {
    format!("{:016x}", v.to_bits())
}

fn decode(s: &str) -> Option<f64> {
    u64::from_str_radix(s, 16).ok().map(f64::from_bits)
}
