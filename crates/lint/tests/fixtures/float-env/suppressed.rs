//! Fixture: a human-facing log line inside the zone may be suppressed.
// lint: zone(float-exact): fixture — journal-adjacent path

fn human_summary(v: f64) -> String {
    // lint: allow(float-env): fixture — human-readable log line, never re-parsed
    format!("{v:.3}")
}
