//! Fixture: lossy float formatting and decimal parsing fire inside a
//! float-exact zone.
// lint: zone(float-exact): fixture — this whole file is a bit-exact path

fn encode(v: f64) -> String {
    format!("{v:.17}")
}

fn decode(s: &str) -> Option<f64> {
    s.parse::<f64>().ok()
}
