//! Fixture: `lint: allow` markers absorb the hits (line-above and same-line).

fn guarded(v: Option<u32>) -> u32 {
    // lint: allow(no-unaudited-panic): fixture — value is always Some here
    v.unwrap()
}

fn same_line(r: Result<u32, u8>) -> u32 {
    r.expect("checked") // lint: allow(no-unaudited-panic): fixture — same-line marker
}
