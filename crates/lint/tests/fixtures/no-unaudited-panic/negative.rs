//! Fixture: nothing here fires. The first three items are grep-killers —
//! the old awk/grep gate flagged every one of them.

/* outer /* nested block comment saying .unwrap() */ still a comment */
// line comment mentioning panic!("no")

use std::sync::Mutex;

fn messages() -> (&'static str, &'static str) {
    // `.unwrap()` inside string literals, including a raw string with hashes.
    ("call .unwrap() then panic!", r#"raw ".unwrap()" text"#)
}

fn poisoned(m: &Mutex<u32>) -> u32 {
    // The poisoned-lock recovery idiom is not `.unwrap()`.
    *m.lock().unwrap_or_else(|e| e.into_inner())
}

fn char_not_lifetime<'a>(s: &'a str) -> (char, &'a str) {
    ('x', s)
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
    }
}
