//! Fixture: every unaudited panic class fires.

fn main() {
    let v: Option<u32> = None;
    let _ = v.unwrap();
    let r: Result<u32, String> = Err("x".into());
    let _ = r.expect("boom");
    panic!("fixture");
}

fn unfinished() {
    todo!()
}
