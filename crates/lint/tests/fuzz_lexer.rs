//! Seeded fuzz for the lexer → brace-tree → full-rule pipeline.
//!
//! The linter's contract is totality: any byte soup the filesystem can hand
//! it must lex, parse into a scope tree, and run every rule without
//! panicking — unterminated raw strings with many `#`s, half-open block
//! comments, CRLF soup, stray quotes, and unbalanced braces included. The
//! generator is a fixed-seed splitmix64, so a failure reproduces exactly;
//! on any panic, print the iteration's seed and shrink by hand.

use hm_lint::engine::check_file;
use hm_lint::lexer::lex;
use hm_lint::rules::default_rules;
use hm_lint::tree;
use std::path::Path;

/// splitmix64: tiny, seedable, and good enough to shake out lexer states.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Fragments weighted toward the lexer's and tree's hard cases.
const FRAGMENTS: &[&str] = &[
    "fn ", "mod ", "impl ", "trait ", "for ", "let ", ";", "{", "}", "(", ")", "<", ">", "->",
    "r\"", "r#\"", "r###\"", "\"#", "\"###", "\"", "\\\"", "\\", "'", "'a", "'a'", "'\\''",
    "b\"", "b'", "/*", "*/", "//", "///", "//!", "\n", "\r\n", "\r", "\t", " ", "#", "####",
    "x", "ident", "self.inner", ".lock()", ".unwrap()", "wait", "recv(", "0x1f", "1_000",
    "1e9", "0.5", "lint: allow(", "lint: zone(", "é", "→", "\u{0}",
];

fn soup(rng: &mut SplitMix64, fragments: usize) -> String {
    let mut s = String::new();
    for _ in 0..fragments {
        s.push_str(FRAGMENTS[rng.below(FRAGMENTS.len())]);
    }
    s
}

/// Lex + tree + every rule; return the scope count so callers can assert
/// the tree converged. Panics here are the failures this test exists for.
fn drive(src: &str) -> usize {
    let tokens = lex(src);
    // Totality: every token's span is in bounds and on a char boundary.
    for t in &tokens {
        assert!(t.start <= t.end && t.end <= src.len(), "token span out of bounds");
        assert!(src.is_char_boundary(t.start) && src.is_char_boundary(t.end));
    }
    let sig: Vec<usize> = (0..tokens.len()).filter(|&i| !tokens[i].is_comment()).collect();
    let tr = tree::parse(src, &tokens, &sig);
    assert!(!tr.scopes.is_empty(), "tree lost its root");
    for s in &tr.scopes {
        assert!(s.open_sig <= s.close_sig, "inverted scope {:?}", s.kind);
    }
    // The full pipeline (guard spans, fixpoint, all eight rules) must also
    // absorb the input; a service-scoped rel exercises the flow rules.
    let rel = "crates/service/src/coordinator.rs";
    let _ = check_file(Path::new(rel), rel, src, &default_rules(), false);
    tr.scopes.len()
}

#[test]
fn random_fragment_soup_never_panics() {
    let mut rng = SplitMix64(0x5EED_0001);
    for iter in 0..300 {
        let len = 1 + rng.below(120);
        let src = soup(&mut rng, len);
        let scopes = drive(&src);
        assert!(scopes >= 1, "iter {iter}: no scopes for {src:?}");
    }
}

#[test]
fn random_char_soup_never_panics() {
    // Pure character soup (no fragment structure): quotes, hashes, braces,
    // slashes, and non-ASCII in every order.
    let alphabet: Vec<char> =
        "r#\"'\\/*{}();\n\r\tbfnmodimpl xé0".chars().collect();
    let mut rng = SplitMix64(0x5EED_0002);
    for _ in 0..300 {
        let len = 1 + rng.below(80);
        let src: String =
            (0..len).map(|_| alphabet[rng.below(alphabet.len())]).collect();
        drive(&src);
    }
}

#[test]
fn pathological_corpus_never_panics() {
    let corpus: &[&str] = &[
        // Unterminated raw strings, with and without many hashes.
        "r\"abc",
        "r#\"abc",
        "r#####\"abc ## \"## fn f() {",
        "let s = r###\"nested \"## quote\"###; fn g() {}",
        // Raw identifiers and lone `r`s.
        "r#fn r#impl r# r",
        // Unterminated block comments, nested.
        "/* /* /* fn hidden() { */",
        "fn a() { /* } */ }",
        "/**/ /*/ */ /* /**/",
        // Unterminated string and char literals.
        "let s = \"abc\\\"; fn b() {}",
        "let c = '\\'; let d = 'x",
        "b\"bytes \\xff",
        // CRLF and bare-CR line endings around comments and markers.
        "// line one\r\nfn c() {}\r\n// lint: allow(no-unaudited-panic): x\r\nfoo.unwrap();\r\n",
        "fn d() {}\r// cr only\rfn e() {}",
        // Unbalanced braces both directions, items without bodies.
        "}}}}}",
        "{{{{{",
        "impl ; mod ; trait ; fn ;",
        "fn f(cb: fn(fn(fn())))",
        "impl<T: Fn() -> u8> X<T> { fn g(&self) -> fn() -> u8 { todo!() } }",
        // Guard-span and call-site edge shapes.
        "fn h() { let g = m.lock(); drop(g); drop(g); }",
        "fn i() { m.lock(); }",
        "fn j() { let g = self.a.lock().unwrap(); }",
        // Marker syntax torture.
        "// lint: allow(",
        "// lint: zone(wire-frame",
        "// lint: allow(unknown-rule): ?",
        // NUL bytes and multibyte chars inside literals and code.
        "fn k() { let s = \"\u{0}héllo→\"; }",
        "\u{0}\u{0}",
        "",
    ];
    for src in corpus {
        drive(src);
    }
}

#[test]
fn soup_with_seeded_trailers_converges() {
    // Whatever garbage precedes it, a well-formed item after the soup must
    // still produce at least one extra scope unless the soup opened a
    // string/comment that swallows it — either way, no panic and the root
    // survives. This pins "the lexer recovers or extends to EOF" behavior.
    let mut rng = SplitMix64(0x5EED_0003);
    for _ in 0..200 {
        let n = rng.below(40);
        let mut src = soup(&mut rng, n);
        src.push_str("\nfn trailer() { body(); }\n");
        drive(&src);
    }
}
