//! Timing isolation: serial re-measurement of predicted-Pareto survivors.
//!
//! Throughput-mode exploration (see [`crate::eval::MeasurementMode`]) ranks
//! configurations by a load-independent work proxy so they can share the
//! machine. The proxy is the *search* metric, not the *reported* metric:
//! once the exploration settles on a Pareto front, the survivors — and only
//! the survivors, typically a few dozen configurations out of thousands
//! evaluated — are re-run here strictly one at a time against a
//! timing-mode evaluator, so the published runtime numbers come from an
//! exclusive machine exactly as the paper measured them.

use hypermapper::{Configuration, EvalError, Evaluator, ExplorationResult};

/// One Pareto-front configuration with both its exploration-time objectives
/// and its dedicated serial re-measurement.
#[derive(Debug, Clone)]
pub struct TimedFrontEntry {
    /// The configuration on the measured Pareto front.
    pub config: Configuration,
    /// Objectives recorded during the (possibly concurrent) exploration —
    /// work-proxy runtime when the exploration ran in throughput mode.
    pub exploration_objectives: Vec<f64>,
    /// Objectives from the dedicated serial re-measurement, or the error if
    /// the re-run failed (a configuration can diverge on re-measurement;
    /// the record is preserved rather than dropped).
    pub timing_objectives: Result<Vec<f64>, EvalError>,
}

/// Re-measure the measured Pareto front of `result` against
/// `timing_evaluator`, strictly serially (one configuration at a time, in
/// front order by the first objective), so each re-run has exclusive use of
/// the machine.
///
/// `timing_evaluator` should be a [`crate::eval::MeasurementMode::Timing`]
/// native evaluator (or anything whose single-config `try_evaluate` is an
/// honest dedicated measurement). This function deliberately never calls
/// `try_evaluate_batch` — the whole point is that nothing runs concurrently
/// with the measurement.
pub fn remeasure_front<E: Evaluator>(
    result: &ExplorationResult,
    timing_evaluator: &E,
) -> Vec<TimedFrontEntry> {
    result
        .pareto_samples()
        .into_iter()
        .map(|sample| TimedFrontEntry {
            config: sample.config.clone(),
            exploration_objectives: sample.objectives.clone(),
            timing_objectives: timing_evaluator.try_evaluate(&sample.config),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypermapper::{FnEvaluator, HyperMapper, OptimizerConfig, ParamSpace};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn space() -> ParamSpace {
        ParamSpace::builder()
            .ordinal("x", (0..30).map(f64::from))
            .ordinal("y", (0..30).map(f64::from))
            .build()
            .unwrap()
    }

    #[test]
    fn remeasure_covers_exactly_the_front_in_order() {
        let s = space();
        let explore = FnEvaluator::new(2, |c| {
            let x = c.value_f64(0);
            let y = c.value_f64(1);
            vec![x + y * 0.1, 30.0 - x + y * 0.05]
        });
        let cfg = OptimizerConfig {
            random_samples: 40,
            max_iterations: 2,
            pool_size: 500,
            seed: 5,
            ..Default::default()
        };
        let result = HyperMapper::new(s, cfg).run(&explore);
        assert!(!result.pareto_indices.is_empty());

        // "Timing" evaluator: same accuracy, scaled runtime, call-counted.
        let calls = AtomicUsize::new(0);
        let timing = FnEvaluator::new(2, |c| {
            calls.fetch_add(1, Ordering::Relaxed);
            let x = c.value_f64(0);
            let y = c.value_f64(1);
            vec![(x + y * 0.1) * 2.0, 30.0 - x + y * 0.05]
        });
        let entries = remeasure_front(&result, &timing);
        assert_eq!(entries.len(), result.pareto_indices.len());
        assert_eq!(calls.load(Ordering::Relaxed), entries.len(), "one serial re-run per survivor");
        for pair in entries.windows(2) {
            assert!(
                pair[0].exploration_objectives[0] <= pair[1].exploration_objectives[0],
                "entries must follow front order"
            );
        }
        for e in &entries {
            let timed = e.timing_objectives.as_ref().expect("re-measurement succeeds");
            assert!((timed[0] - e.exploration_objectives[0] * 2.0).abs() < 1e-9);
            assert_eq!(timed[1], e.exploration_objectives[1]);
        }
    }

    #[test]
    fn failed_remeasurements_are_preserved() {
        hypermapper::silence_injected_panics();
        let s = space();
        let explore = FnEvaluator::new(2, |c| vec![c.value_f64(0), 30.0 - c.value_f64(0)]);
        let cfg = OptimizerConfig {
            random_samples: 30,
            max_iterations: 1,
            pool_size: 300,
            seed: 9,
            ..Default::default()
        };
        let result = HyperMapper::new(s, cfg).run(&explore);
        let timing = FnEvaluator::new(2, |_| panic!("injected panic: device offline"));
        let entries = remeasure_front(&result, &timing);
        assert_eq!(entries.len(), result.pareto_indices.len());
        for e in &entries {
            assert!(matches!(e.timing_objectives, Err(EvalError::Panicked { .. })));
        }
    }
}
