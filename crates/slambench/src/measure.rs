//! Timing isolation: serial re-measurement of predicted-Pareto survivors.
//!
//! Throughput-mode exploration (see [`crate::eval::MeasurementMode`]) ranks
//! configurations by a load-independent work proxy so they can share the
//! machine. The proxy is the *search* metric, not the *reported* metric:
//! once the exploration settles on a Pareto front, the survivors — and only
//! the survivors, typically a few dozen configurations out of thousands
//! evaluated — are re-run here strictly one at a time against a
//! timing-mode evaluator, so the published runtime numbers come from an
//! exclusive machine exactly as the paper measured them.

use hypermapper::{
    Configuration, EvalError, Evaluator, ExplorationResult, HmError, Journal, ParamSpace,
    RawOutcome,
};

/// One Pareto-front configuration with both its exploration-time objectives
/// and its dedicated serial re-measurement.
#[derive(Debug, Clone)]
pub struct TimedFrontEntry {
    /// The configuration on the measured Pareto front.
    pub config: Configuration,
    /// Objectives recorded during the (possibly concurrent) exploration —
    /// work-proxy runtime when the exploration ran in throughput mode.
    pub exploration_objectives: Vec<f64>,
    /// Objectives from the dedicated serial re-measurement, or the error if
    /// the re-run failed (a configuration can diverge on re-measurement;
    /// the record is preserved rather than dropped).
    pub timing_objectives: Result<Vec<f64>, EvalError>,
}

/// Re-measure the measured Pareto front of `result` against
/// `timing_evaluator`, strictly serially (one configuration at a time, in
/// front order by the first objective), so each re-run has exclusive use of
/// the machine.
///
/// `timing_evaluator` should be a [`crate::eval::MeasurementMode::Timing`]
/// native evaluator (or anything whose single-config `try_evaluate` is an
/// honest dedicated measurement). This function deliberately never calls
/// `try_evaluate_batch` — the whole point is that nothing runs concurrently
/// with the measurement.
pub fn remeasure_front<E: Evaluator>(
    result: &ExplorationResult,
    timing_evaluator: &E,
) -> Vec<TimedFrontEntry> {
    result
        .pareto_samples()
        .into_iter()
        .map(|sample| TimedFrontEntry {
            config: sample.config.clone(),
            exploration_objectives: sample.objectives.clone(),
            timing_objectives: timing_evaluator.try_evaluate(&sample.config),
        })
        .collect()
}

/// [`remeasure_front`], but durable: every completed re-measurement is
/// journaled (one fsync'd `timing` record per survivor, in front order)
/// before moving to the next one, and records already in `journal` are
/// replayed instead of re-run. Killing the pass and calling this again with
/// the reopened journal resumes at the first unmeasured survivor — the
/// serial re-measurement of a large front survives crashes without
/// repeating completed dedicated runs.
///
/// Each journaled record is keyed by both its front position and the
/// configuration's flat index in `space`; a journal whose records do not
/// match the front of `result` is rejected with
/// [`HmError::JournalMismatch`] rather than silently misattributed.
pub fn remeasure_front_journaled<E: Evaluator>(
    result: &ExplorationResult,
    timing_evaluator: &E,
    space: &ParamSpace,
    journal: &mut Journal,
) -> Result<Vec<TimedFrontEntry>, HmError> {
    let mut entries = Vec::new();
    for (pos, sample) in result.pareto_samples().into_iter().enumerate() {
        let flat = space.flat_index(&sample.config);
        let timing_objectives = if pos < journal.timing_records() {
            match journal.replayed_timing(pos, flat) {
                Some(outcome) => outcome.as_result(),
                None => {
                    return Err(HmError::JournalMismatch(format!(
                        "timing record {pos} was journaled for a different configuration"
                    )))
                }
            }
        } else {
            let outcome =
                RawOutcome::from_detailed(timing_evaluator.try_evaluate_detailed(&sample.config));
            journal
                .append_timing(pos, flat, &outcome)
                .map_err(|e| HmError::Journal(e.to_string()))?;
            outcome.as_result()
        };
        entries.push(TimedFrontEntry {
            config: sample.config.clone(),
            exploration_objectives: sample.objectives.clone(),
            timing_objectives,
        });
    }
    Ok(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypermapper::{FnEvaluator, HyperMapper, OptimizerConfig, ParamSpace};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn space() -> ParamSpace {
        ParamSpace::builder()
            .ordinal("x", (0..30).map(f64::from))
            .ordinal("y", (0..30).map(f64::from))
            .build()
            .unwrap()
    }

    #[test]
    fn remeasure_covers_exactly_the_front_in_order() {
        let s = space();
        let explore = FnEvaluator::new(2, |c| {
            let x = c.value_f64(0);
            let y = c.value_f64(1);
            vec![x + y * 0.1, 30.0 - x + y * 0.05]
        });
        let cfg = OptimizerConfig {
            random_samples: 40,
            max_iterations: 2,
            pool_size: 500,
            seed: 5,
            ..Default::default()
        };
        let result = HyperMapper::new(s, cfg).run(&explore);
        assert!(!result.pareto_indices.is_empty());

        // "Timing" evaluator: same accuracy, scaled runtime, call-counted.
        let calls = AtomicUsize::new(0);
        let timing = FnEvaluator::new(2, |c| {
            calls.fetch_add(1, Ordering::Relaxed);
            let x = c.value_f64(0);
            let y = c.value_f64(1);
            vec![(x + y * 0.1) * 2.0, 30.0 - x + y * 0.05]
        });
        let entries = remeasure_front(&result, &timing);
        assert_eq!(entries.len(), result.pareto_indices.len());
        assert_eq!(calls.load(Ordering::Relaxed), entries.len(), "one serial re-run per survivor");
        for pair in entries.windows(2) {
            assert!(
                pair[0].exploration_objectives[0] <= pair[1].exploration_objectives[0],
                "entries must follow front order"
            );
        }
        for e in &entries {
            let timed = e.timing_objectives.as_ref().expect("re-measurement succeeds");
            assert!((timed[0] - e.exploration_objectives[0] * 2.0).abs() < 1e-9);
            assert_eq!(timed[1], e.exploration_objectives[1]);
        }
    }

    #[test]
    fn failed_remeasurements_are_preserved() {
        hypermapper::silence_injected_panics();
        let s = space();
        let explore = FnEvaluator::new(2, |c| vec![c.value_f64(0), 30.0 - c.value_f64(0)]);
        let cfg = OptimizerConfig {
            random_samples: 30,
            max_iterations: 1,
            pool_size: 300,
            seed: 9,
            ..Default::default()
        };
        let result = HyperMapper::new(s, cfg).run(&explore);
        let timing = FnEvaluator::new(2, |_| panic!("injected panic: device offline"));
        let entries = remeasure_front(&result, &timing);
        assert_eq!(entries.len(), result.pareto_indices.len());
        for e in &entries {
            assert!(matches!(e.timing_objectives, Err(EvalError::Panicked { .. })));
        }
    }

    /// An exploration whose front has several survivors, with deterministic
    /// objectives so entries can be matched across passes.
    fn explored() -> (ParamSpace, hypermapper::ExplorationResult) {
        let s = space();
        let explore = FnEvaluator::new(2, |c| {
            let x = c.value_f64(0);
            let y = c.value_f64(1);
            vec![x + y * 0.1, 30.0 - x + (y - 7.0).abs() * 0.3]
        });
        let cfg = OptimizerConfig {
            random_samples: 40,
            max_iterations: 2,
            pool_size: 500,
            seed: 12,
            ..Default::default()
        };
        let result = HyperMapper::new(s.clone(), cfg).run(&explore);
        assert!(result.pareto_indices.len() >= 3, "need a non-trivial front");
        (s, result)
    }

    /// A timing evaluator where some survivors diverge and some panic under
    /// dedicated measurement — the satellite-3 scenario: a configuration
    /// that looked fine under the work proxy falls over when actually run
    /// for timing.
    struct FlakyTiming<'a> {
        calls: &'a AtomicUsize,
    }

    impl Evaluator for FlakyTiming<'_> {
        fn n_objectives(&self) -> usize {
            2
        }

        fn evaluate(&self, c: &Configuration) -> Vec<f64> {
            let x = c.value_f64(0);
            let y = c.value_f64(1);
            let xi = x as usize;
            if xi % 5 == 2 {
                panic!("injected panic: tracking lost at frame {xi}");
            }
            vec![(x + y * 0.1) * 1.5, 30.0 - x + (y - 7.0).abs() * 0.3]
        }

        fn try_evaluate(&self, c: &Configuration) -> Result<Vec<f64>, EvalError> {
            self.calls.fetch_add(1, Ordering::Relaxed);
            let xi = c.value_f64(0) as usize;
            if xi % 5 == 4 {
                return Err(EvalError::Diverged {
                    reason: format!("pose non-finite at frame {xi}"),
                });
            }
            hypermapper::catch_eval(self, c)
        }
    }

    #[test]
    fn mixed_survivor_failures_keep_front_positions() {
        hypermapper::silence_injected_panics();
        let (_, result) = explored();
        let calls = AtomicUsize::new(0);
        let timing = FlakyTiming { calls: &calls };
        let entries = remeasure_front(&result, &timing);
        assert_eq!(entries.len(), result.pareto_indices.len());
        // Every survivor keeps its slot, failed or not, and the outcome is
        // decided per-configuration.
        for e in &entries {
            let xi = e.config.value_f64(0) as usize;
            match xi % 5 {
                2 => assert!(
                    matches!(&e.timing_objectives, Err(EvalError::Panicked { message }) if message.contains("tracking lost")),
                    "survivor x={xi} should have panicked: {:?}", e.timing_objectives
                ),
                4 => assert!(e.timing_objectives.is_err(), "survivor x={xi} should have failed"),
                _ => assert!(e.timing_objectives.is_ok(), "survivor x={xi} should have timed"),
            }
        }
    }

    #[test]
    fn journaled_remeasure_resumes_without_repeating_completed_runs() {
        hypermapper::silence_injected_panics();
        let (s, result) = explored();
        let mut path = std::env::temp_dir();
        path.push(format!("slambench-timing-{}.journal", std::process::id()));

        // First pass: full journaled re-measurement (including failures).
        let calls = AtomicUsize::new(0);
        let timing = FlakyTiming { calls: &calls };
        let mut journal = Journal::create(&path).unwrap();
        let first = remeasure_front_journaled(&result, &timing, &s, &mut journal).unwrap();
        let n = result.pareto_indices.len();
        assert_eq!(first.len(), n);
        assert_eq!(calls.load(Ordering::Relaxed), n);
        drop(journal);

        // Simulate a kill after two survivors: keep only the first two
        // timing records in the file.
        let bytes = std::fs::read(&path).unwrap();
        let cut = bytes
            .iter()
            .enumerate()
            .filter(|(_, &b)| b == b'\n')
            .map(|(i, _)| i + 1)
            .nth(1)
            .unwrap();
        std::fs::write(&path, &bytes[..cut]).unwrap();

        // Resume: the two journaled survivors are replayed (zero evaluator
        // calls), the rest are re-run serially from where the pass died.
        let calls2 = AtomicUsize::new(0);
        let timing2 = FlakyTiming { calls: &calls2 };
        let mut journal = Journal::open(&path).unwrap();
        assert_eq!(journal.timing_records(), 2);
        let resumed = remeasure_front_journaled(&result, &timing2, &s, &mut journal).unwrap();
        assert_eq!(calls2.load(Ordering::Relaxed), n - 2, "completed runs must not repeat");
        assert_eq!(resumed.len(), first.len());
        for (a, b) in first.iter().zip(&resumed) {
            assert_eq!(a.config.choices(), b.config.choices());
            match (&a.timing_objectives, &b.timing_objectives) {
                (Ok(x), Ok(y)) => {
                    let xb: Vec<u64> = x.iter().map(|v| v.to_bits()).collect();
                    let yb: Vec<u64> = y.iter().map(|v| v.to_bits()).collect();
                    assert_eq!(xb, yb, "replayed timing must be bit-identical");
                }
                (Err(x), Err(y)) => assert_eq!(x, y),
                other => panic!("outcome kind changed across resume: {other:?}"),
            }
        }
        drop(journal);

        // A fully journaled pass replays everything: zero evaluator calls.
        let calls3 = AtomicUsize::new(0);
        let timing3 = FlakyTiming { calls: &calls3 };
        let mut journal = Journal::open(&path).unwrap();
        assert_eq!(journal.timing_records(), n);
        let replayed = remeasure_front_journaled(&result, &timing3, &s, &mut journal).unwrap();
        assert_eq!(calls3.load(Ordering::Relaxed), 0);
        assert_eq!(replayed.len(), n);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn timing_journal_for_a_different_front_is_rejected() {
        hypermapper::silence_injected_panics();
        let (s, result) = explored();
        let mut path = std::env::temp_dir();
        path.push(format!("slambench-timing-mismatch-{}.journal", std::process::id()));

        let timing = FnEvaluator::new(2, |c: &hypermapper::Configuration| {
            vec![c.value_f64(0), c.value_f64(1)]
        });
        let mut journal = Journal::create(&path).unwrap();
        let _ = remeasure_front_journaled(&result, &timing, &s, &mut journal).unwrap();
        drop(journal);

        // A different exploration (different seed → different front) must
        // not silently inherit this journal's measurements.
        let explore = FnEvaluator::new(2, |c: &hypermapper::Configuration| {
            let x = c.value_f64(0);
            vec![30.0 - x, x + c.value_f64(1)]
        });
        let cfg = OptimizerConfig {
            random_samples: 30,
            max_iterations: 1,
            pool_size: 300,
            seed: 77,
            ..Default::default()
        };
        let other = HyperMapper::new(s.clone(), cfg).run(&explore);
        let mut journal = Journal::open(&path).unwrap();
        let err = remeasure_front_journaled(&other, &timing, &s, &mut journal);
        assert!(
            matches!(err, Err(hypermapper::HmError::JournalMismatch(_))),
            "got {err:?}"
        );
        let _ = std::fs::remove_file(&path);
    }
}
