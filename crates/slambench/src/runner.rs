//! Pipeline runners: execute a SLAM system over a sequence and measure.

use crate::metrics::{ate, AteStats};
use elasticfusion::{EFusionConfig, ElasticFusion};
use icl_nuim_synth::SyntheticSequence;
use kfusion::{KFusion, KFusionConfig};
use slam_geometry::SE3;

/// The measurement output of one benchmark run — the two performance
/// metrics of the paper plus supporting detail.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Trajectory accuracy.
    pub ate: AteStats,
    /// Mean wall-clock seconds per frame.
    pub mean_frame_time: f64,
    /// Total wall-clock seconds over the sequence.
    pub total_time: f64,
    /// Frames per second (1 / mean_frame_time).
    pub fps: f64,
    /// Number of frames processed.
    pub frames: usize,
    /// Fraction of frames where tracking succeeded.
    pub tracked_fraction: f64,
}

impl PerfReport {
    fn from_run(gt: &[SE3], est: &[SE3], frame_times: &[f64], tracked: usize) -> PerfReport {
        let total_time: f64 = frame_times.iter().sum();
        let mean = total_time / frame_times.len().max(1) as f64;
        PerfReport {
            ate: ate(gt, est),
            mean_frame_time: mean,
            total_time,
            fps: if mean > 0.0 { 1.0 / mean } else { 0.0 },
            frames: frame_times.len(),
            tracked_fraction: tracked as f64 / frame_times.len().max(1) as f64,
        }
    }
}

/// Run the KinectFusion pipeline over the first `n_frames` of `seq`
/// (clamped to the sequence length) and measure runtime and ATE.
pub fn run_kfusion(seq: &SyntheticSequence, config: &KFusionConfig, n_frames: usize) -> PerfReport {
    let n = n_frames.min(seq.len()).max(1);
    let mut pipeline = KFusion::new(config.clone(), seq.intrinsics(), seq.gt_pose(0));
    let mut gt = Vec::with_capacity(n);
    let mut frame_times = Vec::with_capacity(n);
    let mut tracked = 0usize;
    for i in 0..n {
        let frame = seq.cached_frame(i);
        let stats = pipeline.process(frame);
        gt.push(frame.gt_pose);
        frame_times.push(stats.timings.total());
        if stats.tracked || !stats.tracking_attempted {
            tracked += 1;
        }
    }
    PerfReport::from_run(&gt, pipeline.trajectory(), &frame_times, tracked)
}

/// Run the ElasticFusion pipeline over the first `n_frames` of `seq`.
pub fn run_elasticfusion(
    seq: &SyntheticSequence,
    config: &EFusionConfig,
    n_frames: usize,
) -> PerfReport {
    let n = n_frames.min(seq.len()).max(1);
    let mut pipeline = ElasticFusion::new(config.clone(), seq.intrinsics(), seq.gt_pose(0));
    let mut gt = Vec::with_capacity(n);
    let mut frame_times = Vec::with_capacity(n);
    let mut tracked = 0usize;
    for i in 0..n {
        let frame = seq.cached_frame(i);
        let stats = pipeline.process(frame);
        gt.push(frame.gt_pose);
        frame_times.push(stats.total_time());
        if stats.tracked || i == 0 {
            tracked += 1;
        }
    }
    PerfReport::from_run(&gt, pipeline.trajectory(), &frame_times, tracked)
}

#[cfg(test)]
mod tests {
    use super::*;
    use icl_nuim_synth::{NoiseModel, SequenceConfig, SyntheticSequence, TrajectoryKind};

    fn seq() -> SyntheticSequence {
        SyntheticSequence::new(SequenceConfig {
            width: 64,
            height: 48,
            n_frames: 120,
            trajectory: TrajectoryKind::LivingRoomLoop,
            noise: NoiseModel::none(),
            seed: 0,
        })
    }

    #[test]
    fn kfusion_run_produces_sane_report() {
        let s = seq();
        let cfg = KFusionConfig { volume_resolution: 64, ..Default::default() };
        let r = run_kfusion(&s, &cfg, 8);
        assert_eq!(r.frames, 8);
        assert!(r.mean_frame_time > 0.0);
        assert!(r.fps > 0.0);
        assert!(r.ate.mean.is_finite());
        assert!(r.tracked_fraction > 0.5, "tracked {}", r.tracked_fraction);
        assert!((r.total_time - r.mean_frame_time * 8.0).abs() < 1e-9);
    }

    #[test]
    fn elasticfusion_run_produces_sane_report() {
        let s = seq();
        let cfg = EFusionConfig::default();
        let r = run_elasticfusion(&s, &cfg, 8);
        assert_eq!(r.frames, 8);
        assert!(r.mean_frame_time > 0.0);
        assert!(r.ate.mean.is_finite());
        assert!(r.tracked_fraction > 0.5);
    }

    #[test]
    fn kfusion_tracking_beats_open_loop() {
        // Tracking every frame must beat never tracking on accuracy.
        let s = seq();
        let base = KFusionConfig { volume_resolution: 64, ..Default::default() };
        let good = run_kfusion(&s, &base, 10);
        let never = KFusionConfig {
            tracking_rate: 100, // effectively never re-localizes
            ..base
        };
        let bad = run_kfusion(&s, &never, 10);
        assert!(
            bad.ate.max > good.ate.max,
            "open-loop {} should exceed tracked {}",
            bad.ate.max,
            good.ate.max
        );
    }

    #[test]
    fn frame_count_clamped_to_sequence() {
        let s = seq();
        let cfg = KFusionConfig { volume_resolution: 64, ..Default::default() };
        let r = run_kfusion(&s, &cfg, 5);
        assert_eq!(r.frames, 5);
    }
}
