//! Pipeline runners: execute a SLAM system over a sequence and measure.

use crate::metrics::{ate, AteStats};
use elasticfusion::{EFusionConfig, ElasticFusion};
use icl_nuim_synth::SyntheticSequence;
use kfusion::{KFusion, KFusionConfig};
use slam_geometry::SE3;
use std::fmt;

/// Consecutive failed tracking attempts before a run is declared collapsed.
/// Real trackers occasionally drop a frame and recover; a run that fails
/// this many frames in a row has lost the map and every further frame only
/// burns time on an already-meaningless trajectory.
const TRACKING_COLLAPSE_LIMIT: usize = 10;

/// Why a run was aborted early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceReason {
    /// The pipeline produced a pose with NaN/infinite entries.
    NonFinitePose,
    /// The trajectory error over the clean frames is not finite.
    NonFiniteAte,
    /// Tracking failed [`TRACKING_COLLAPSE_LIMIT`] frames in a row.
    TrackingCollapse,
}

impl fmt::Display for DivergenceReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DivergenceReason::NonFinitePose => write!(f, "non-finite pose"),
            DivergenceReason::NonFiniteAte => write!(f, "non-finite trajectory error"),
            DivergenceReason::TrackingCollapse => write!(f, "tracking collapse"),
        }
    }
}

/// Whether a run processed its whole budget or aborted early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// All requested frames were processed.
    Completed,
    /// The run was aborted at `at_frame` (0-based) — the report covers only
    /// the clean prefix of the sequence.
    Diverged {
        /// What tripped the abort.
        reason: DivergenceReason,
        /// 0-based index of the frame where divergence was detected.
        at_frame: usize,
    },
}

impl RunStatus {
    /// True when the run aborted early.
    pub fn is_diverged(&self) -> bool {
        matches!(self, RunStatus::Diverged { .. })
    }
}

impl fmt::Display for RunStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunStatus::Completed => write!(f, "completed"),
            RunStatus::Diverged { reason, at_frame } => {
                write!(f, "diverged at frame {at_frame}: {reason}")
            }
        }
    }
}

/// The measurement output of one benchmark run — the two performance
/// metrics of the paper plus supporting detail.
///
/// A diverged run reports metrics over the *clean prefix* of the sequence
/// (everything before the frame that tripped detection), so the numeric
/// fields stay finite even when the pipeline blew up; check
/// [`PerfReport::status`] before treating them as a measurement of the full
/// sequence.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Trajectory accuracy over the processed frames.
    pub ate: AteStats,
    /// Mean wall-clock seconds per frame.
    pub mean_frame_time: f64,
    /// Total wall-clock seconds over the sequence.
    pub total_time: f64,
    /// Frames per second (1 / mean_frame_time).
    pub fps: f64,
    /// Number of frames processed (less than requested when diverged).
    pub frames: usize,
    /// Fraction of processed frames where tracking succeeded.
    pub tracked_fraction: f64,
    /// Whether the run completed or aborted early.
    pub status: RunStatus,
}

impl PerfReport {
    fn from_run(
        gt: &[SE3],
        est: &[SE3],
        frame_times: &[f64],
        tracked: usize,
        status: RunStatus,
    ) -> PerfReport {
        // The runners clamp the frame budget to ≥ 1 and always record the
        // divergence frame itself, so a report over zero frames is
        // unreachable; the assert keeps the divisions below honest.
        assert!(!frame_times.is_empty(), "a run must process at least one frame");
        let frames = frame_times.len();
        let total_time: f64 = frame_times.iter().sum();
        let mean = total_time / frames as f64;
        let ate = ate(gt, est);
        // A NaN that slips past pose checks (e.g. through depth data) still
        // must not masquerade as a completed measurement.
        let status = if status == RunStatus::Completed
            && !(ate.mean.is_finite() && ate.max.is_finite() && ate.rmse.is_finite())
        {
            RunStatus::Diverged {
                reason: DivergenceReason::NonFiniteAte,
                at_frame: frames - 1,
            }
        } else {
            status
        };
        PerfReport {
            ate,
            mean_frame_time: mean,
            total_time,
            fps: if mean > 0.0 { 1.0 / mean } else { 0.0 },
            frames,
            tracked_fraction: tracked as f64 / frames as f64,
            status,
        }
    }
}

fn pose_is_finite(p: &SE3) -> bool {
    p.t.x.is_finite()
        && p.t.y.is_finite()
        && p.t.z.is_finite()
        && p.r.m.iter().all(|row| row.iter().all(|v| v.is_finite()))
}

/// Tracks consecutive failed tracking attempts; trips at
/// [`TRACKING_COLLAPSE_LIMIT`].
struct CollapseMonitor {
    consecutive: usize,
}

impl CollapseMonitor {
    fn new() -> Self {
        CollapseMonitor { consecutive: 0 }
    }

    /// Record one frame's tracking outcome; returns true on collapse.
    fn observe(&mut self, tracking_failed: bool) -> bool {
        if tracking_failed {
            self.consecutive += 1;
        } else {
            self.consecutive = 0;
        }
        self.consecutive >= TRACKING_COLLAPSE_LIMIT
    }
}

/// Run the KinectFusion pipeline over the first `n_frames` of `seq`
/// (clamped to the sequence length) and measure runtime and ATE.
///
/// Divergence (non-finite pose, sustained tracking collapse) aborts the run
/// early: the report covers the clean frames processed so far and carries
/// [`RunStatus::Diverged`] instead of poisoning downstream statistics with
/// NaN.
pub fn run_kfusion(seq: &SyntheticSequence, config: &KFusionConfig, n_frames: usize) -> PerfReport {
    let n = n_frames.min(seq.len()).max(1);
    let mut pipeline = KFusion::new(config.clone(), seq.intrinsics(), seq.gt_pose(0));
    let mut gt = Vec::with_capacity(n);
    let mut frame_times = Vec::with_capacity(n);
    let mut tracked = 0usize;
    let mut monitor = CollapseMonitor::new();
    let mut status = RunStatus::Completed;
    for i in 0..n {
        let frame = seq.cached_frame(i);
        let stats = pipeline.process(frame);
        if !pose_is_finite(&stats.pose) && i > 0 {
            status = RunStatus::Diverged {
                reason: DivergenceReason::NonFinitePose,
                at_frame: i,
            };
            break; // this frame's pose is garbage: keep the clean prefix
        }
        gt.push(frame.gt_pose);
        frame_times.push(stats.timings.total());
        let frame_tracked = stats.tracked || !stats.tracking_attempted;
        if frame_tracked {
            tracked += 1;
        }
        if monitor.observe(!frame_tracked) {
            status = RunStatus::Diverged {
                reason: DivergenceReason::TrackingCollapse,
                at_frame: i,
            };
            break;
        }
    }
    PerfReport::from_run(&gt, &pipeline.trajectory()[..gt.len()], &frame_times, tracked, status)
}

/// Run the ElasticFusion pipeline over the first `n_frames` of `seq`, with
/// the same early-abort divergence handling as [`run_kfusion`].
pub fn run_elasticfusion(
    seq: &SyntheticSequence,
    config: &EFusionConfig,
    n_frames: usize,
) -> PerfReport {
    let n = n_frames.min(seq.len()).max(1);
    let mut pipeline = ElasticFusion::new(config.clone(), seq.intrinsics(), seq.gt_pose(0));
    let mut gt = Vec::with_capacity(n);
    let mut frame_times = Vec::with_capacity(n);
    let mut tracked = 0usize;
    let mut monitor = CollapseMonitor::new();
    let mut status = RunStatus::Completed;
    for i in 0..n {
        let frame = seq.cached_frame(i);
        let stats = pipeline.process(frame);
        if !pose_is_finite(&stats.pose) && i > 0 {
            status = RunStatus::Diverged {
                reason: DivergenceReason::NonFinitePose,
                at_frame: i,
            };
            break;
        }
        gt.push(frame.gt_pose);
        frame_times.push(stats.total_time());
        let frame_tracked = stats.tracked || i == 0;
        if frame_tracked {
            tracked += 1;
        }
        if monitor.observe(!frame_tracked) {
            status = RunStatus::Diverged {
                reason: DivergenceReason::TrackingCollapse,
                at_frame: i,
            };
            break;
        }
    }
    PerfReport::from_run(&gt, &pipeline.trajectory()[..gt.len()], &frame_times, tracked, status)
}

#[cfg(test)]
mod tests {
    use super::*;
    use icl_nuim_synth::{NoiseModel, SequenceConfig, SyntheticSequence, TrajectoryKind};

    fn seq() -> SyntheticSequence {
        SyntheticSequence::new(SequenceConfig {
            width: 64,
            height: 48,
            n_frames: 120,
            trajectory: TrajectoryKind::LivingRoomLoop,
            noise: NoiseModel::none(),
            seed: 0,
        })
    }

    #[test]
    fn kfusion_run_produces_sane_report() {
        let s = seq();
        let cfg = KFusionConfig { volume_resolution: 64, ..Default::default() };
        let r = run_kfusion(&s, &cfg, 8);
        assert_eq!(r.frames, 8);
        assert_eq!(r.status, RunStatus::Completed);
        assert!(r.mean_frame_time > 0.0);
        assert!(r.fps > 0.0);
        assert!(r.ate.mean.is_finite());
        assert!(r.tracked_fraction > 0.5, "tracked {}", r.tracked_fraction);
        assert!((r.total_time - r.mean_frame_time * 8.0).abs() < 1e-9);
    }

    #[test]
    fn elasticfusion_run_produces_sane_report() {
        let s = seq();
        let cfg = EFusionConfig::default();
        let r = run_elasticfusion(&s, &cfg, 8);
        assert_eq!(r.frames, 8);
        assert_eq!(r.status, RunStatus::Completed);
        assert!(r.mean_frame_time > 0.0);
        assert!(r.ate.mean.is_finite());
        assert!(r.tracked_fraction > 0.5);
    }

    #[test]
    fn kfusion_tracking_beats_open_loop() {
        // Tracking every frame must beat never tracking on accuracy.
        let s = seq();
        let base = KFusionConfig { volume_resolution: 64, ..Default::default() };
        let good = run_kfusion(&s, &base, 10);
        let never = KFusionConfig {
            tracking_rate: 100, // effectively never re-localizes
            ..base
        };
        let bad = run_kfusion(&s, &never, 10);
        assert!(
            bad.ate.max > good.ate.max,
            "open-loop {} should exceed tracked {}",
            bad.ate.max,
            good.ate.max
        );
    }

    #[test]
    fn frame_count_clamped_to_sequence() {
        let s = seq();
        let cfg = KFusionConfig { volume_resolution: 64, ..Default::default() };
        let r = run_kfusion(&s, &cfg, 5);
        assert_eq!(r.frames, 5);
    }

    #[test]
    fn tracking_collapse_aborts_early_with_finite_report() {
        // Zero ICP iterations at every pyramid level: tracking is attempted
        // each frame (tracking_rate: 1) but can never converge, so the run
        // must trip the collapse detector instead of grinding through the
        // whole budget and returning garbage.
        let s = seq();
        let cfg = KFusionConfig {
            volume_resolution: 64,
            tracking_rate: 1,
            pyramid_iterations: [0, 0, 0],
            ..Default::default()
        };
        let r = run_kfusion(&s, &cfg, 40);
        match r.status {
            RunStatus::Diverged { reason, at_frame } => {
                assert_eq!(reason, DivergenceReason::TrackingCollapse);
                assert!(at_frame < 40, "collapse frame {at_frame}");
            }
            RunStatus::Completed => panic!("expected divergence, got completion: {r:?}"),
        }
        assert!(r.frames < 40, "aborted early, processed {}", r.frames);
        assert!(r.ate.mean.is_finite());
        assert!(r.mean_frame_time.is_finite() && r.mean_frame_time > 0.0);
        assert!(r.tracked_fraction < 0.5);
    }
}
