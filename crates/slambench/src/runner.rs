//! Pipeline runners: execute a SLAM system over a sequence and measure.

use crate::metrics::{ate, AteStats};
use elasticfusion::{EFusionConfig, ElasticFusion};
use icl_nuim_synth::SyntheticSequence;
use kfusion::{KFusion, KFusionConfig};
use slam_geometry::SE3;
use std::fmt;

/// Consecutive failed tracking attempts before a run is declared collapsed.
/// Real trackers occasionally drop a frame and recover; a run that fails
/// this many frames in a row has lost the map and every further frame only
/// burns time on an already-meaningless trajectory.
const TRACKING_COLLAPSE_LIMIT: usize = 10;

/// Why a run was aborted early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DivergenceReason {
    /// The pipeline produced a pose with NaN/infinite entries.
    NonFinitePose,
    /// The trajectory error over the clean frames is not finite.
    NonFiniteAte,
    /// Tracking failed [`TRACKING_COLLAPSE_LIMIT`] frames in a row.
    TrackingCollapse,
}

impl fmt::Display for DivergenceReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DivergenceReason::NonFinitePose => write!(f, "non-finite pose"),
            DivergenceReason::NonFiniteAte => write!(f, "non-finite trajectory error"),
            DivergenceReason::TrackingCollapse => write!(f, "tracking collapse"),
        }
    }
}

/// Whether a run processed its whole budget or aborted early.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunStatus {
    /// All requested frames were processed.
    Completed,
    /// The run was aborted at `at_frame` (0-based) — the report covers only
    /// the clean prefix of the sequence.
    Diverged {
        /// What tripped the abort.
        reason: DivergenceReason,
        /// 0-based index of the frame where divergence was detected.
        at_frame: usize,
    },
}

impl RunStatus {
    /// True when the run aborted early.
    pub fn is_diverged(&self) -> bool {
        matches!(self, RunStatus::Diverged { .. })
    }
}

impl fmt::Display for RunStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunStatus::Completed => write!(f, "completed"),
            RunStatus::Diverged { reason, at_frame } => {
                write!(f, "diverged at frame {at_frame}: {reason}")
            }
        }
    }
}

/// The measurement output of one benchmark run — the two performance
/// metrics of the paper plus supporting detail.
///
/// A diverged run reports metrics over the *clean prefix* of the sequence
/// (everything before the frame that tripped detection), so the numeric
/// fields stay finite even when the pipeline blew up; check
/// [`PerfReport::status`] before treating them as a measurement of the full
/// sequence.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Trajectory accuracy over the processed frames.
    pub ate: AteStats,
    /// Mean wall-clock seconds per frame.
    pub mean_frame_time: f64,
    /// Total wall-clock seconds over the sequence.
    pub total_time: f64,
    /// Frames per second (1 / mean_frame_time).
    pub fps: f64,
    /// Mean work-proxy per frame, in pseudo-seconds (see
    /// [`kf_frame_work`] / [`ef_frame_work`]). Unlike `mean_frame_time`,
    /// this is a pure function of the configuration and the per-frame
    /// control flow, so it is immune to machine load and safe to compare
    /// across configurations evaluated concurrently.
    pub mean_frame_work: f64,
    /// Total work-proxy over the sequence, in pseudo-seconds.
    pub total_work: f64,
    /// Number of frames processed (less than requested when diverged).
    pub frames: usize,
    /// Fraction of processed frames where tracking succeeded.
    pub tracked_fraction: f64,
    /// Whether the run completed or aborted early.
    pub status: RunStatus,
}

impl PerfReport {
    fn from_run(
        gt: &[SE3],
        est: &[SE3],
        frame_times: &[f64],
        frame_works: &[f64],
        tracked: usize,
        status: RunStatus,
    ) -> PerfReport {
        // The runners clamp the frame budget to ≥ 1 and always record the
        // divergence frame itself, so a report over zero frames is
        // unreachable; the assert keeps the divisions below honest.
        assert!(!frame_times.is_empty(), "a run must process at least one frame");
        debug_assert_eq!(frame_times.len(), frame_works.len());
        let frames = frame_times.len();
        let total_time: f64 = frame_times.iter().sum();
        let total_work: f64 = frame_works.iter().sum();
        let mean = total_time / frames as f64;
        let ate = ate(gt, est);
        // A NaN that slips past pose checks (e.g. through depth data) still
        // must not masquerade as a completed measurement.
        let status = if status == RunStatus::Completed
            && !(ate.mean.is_finite() && ate.max.is_finite() && ate.rmse.is_finite())
        {
            RunStatus::Diverged {
                reason: DivergenceReason::NonFiniteAte,
                at_frame: frames - 1,
            }
        } else {
            status
        };
        PerfReport {
            ate,
            mean_frame_time: mean,
            total_time,
            fps: if mean > 0.0 { 1.0 / mean } else { 0.0 },
            mean_frame_work: total_work / frames as f64,
            total_work,
            frames,
            tracked_fraction: tracked as f64 / frames as f64,
            status,
        }
    }
}

/// Scale of the work-proxy metrics: proxy operation counts are divided by
/// this, so `mean_frame_work` lands in "pseudo-seconds" of the same order
/// of magnitude as `mean_frame_time` on a ~1 GFLOP/s device.
const PROXY_UNITS_PER_SECOND: f64 = 1e9;

/// Deterministic per-frame work proxy for KinectFusion: weighted operation
/// counts for the kernels the frame actually ran (preprocessing, per-level
/// ICP, TSDF integration, raycast), derived from the configuration and the
/// frame's control-flow flags — never from the clock. Two runs of the same
/// configuration produce identical values regardless of machine load, which
/// is what makes throughput-mode (concurrent) evaluation comparable.
fn kf_frame_work(
    config: &KFusionConfig,
    width: usize,
    height: usize,
    tracking_attempted: bool,
    integrated: bool,
) -> f64 {
    let ratio = config.compute_size_ratio.max(1);
    let pixels = (width / ratio).max(1) as f64 * (height / ratio).max(1) as f64;
    // Depth resize + bilateral filter + vertex/normal maps.
    let mut units = pixels * 30.0;
    if tracking_attempted {
        // Per-level ICP: each iteration touches every pixel of its level;
        // level k is downsampled 2× per axis from level k-1.
        let mut level_pixels = pixels;
        for &iters in &config.pyramid_iterations {
            units += iters as f64 * level_pixels * 80.0;
            level_pixels /= 4.0;
        }
    }
    let volume = config.volume_resolution as f64;
    if integrated {
        // TSDF integration sweeps the full voxel grid.
        units += volume * volume * volume * 4.0;
    }
    // Raycast marches each pixel's ray through the volume.
    units += pixels * volume * 0.5;
    units / PROXY_UNITS_PER_SECOND
}

/// Deterministic per-frame work proxy for ElasticFusion: weighted operation
/// counts for odometry, SO(3) pre-alignment, surfel fusion over the current
/// map, and the loop-closure machinery. Same determinism contract as
/// [`kf_frame_work`].
fn ef_frame_work(config: &EFusionConfig, width: usize, height: usize, map_size: usize) -> f64 {
    let pixels = width as f64 * height as f64;
    let odom_iters = if config.fast_odom { 4.0 } else { 10.0 };
    let mut units = pixels * odom_iters * 60.0;
    if !config.so3_disabled {
        units += pixels * 20.0;
    }
    // Surfel fusion + map maintenance scale with the live map.
    units += map_size as f64 * 16.0;
    if !config.open_loop {
        // Inactive-model prediction + fern encoding for loop closure.
        units += pixels * 40.0;
    }
    units / PROXY_UNITS_PER_SECOND
}

fn pose_is_finite(p: &SE3) -> bool {
    p.t.x.is_finite()
        && p.t.y.is_finite()
        && p.t.z.is_finite()
        && p.r.m.iter().all(|row| row.iter().all(|v| v.is_finite()))
}

/// Tracks consecutive failed tracking attempts; trips at
/// [`TRACKING_COLLAPSE_LIMIT`].
struct CollapseMonitor {
    consecutive: usize,
}

impl CollapseMonitor {
    fn new() -> Self {
        CollapseMonitor { consecutive: 0 }
    }

    /// Record one frame's tracking outcome; returns true on collapse.
    fn observe(&mut self, tracking_failed: bool) -> bool {
        if tracking_failed {
            self.consecutive += 1;
        } else {
            self.consecutive = 0;
        }
        self.consecutive >= TRACKING_COLLAPSE_LIMIT
    }
}

/// Run the KinectFusion pipeline over the first `n_frames` of `seq`
/// (clamped to the sequence length) and measure runtime and ATE.
///
/// Divergence (non-finite pose, sustained tracking collapse) aborts the run
/// early: the report covers the clean frames processed so far and carries
/// [`RunStatus::Diverged`] instead of poisoning downstream statistics with
/// NaN.
pub fn run_kfusion(seq: &SyntheticSequence, config: &KFusionConfig, n_frames: usize) -> PerfReport {
    let n = n_frames.min(seq.len()).max(1);
    let intrinsics = seq.intrinsics();
    let mut pipeline = KFusion::new(config.clone(), intrinsics, seq.gt_pose(0));
    let mut gt = Vec::with_capacity(n);
    let mut frame_times = Vec::with_capacity(n);
    let mut frame_works = Vec::with_capacity(n);
    let mut tracked = 0usize;
    let mut monitor = CollapseMonitor::new();
    let mut status = RunStatus::Completed;
    for i in 0..n {
        let frame = seq.cached_frame(i);
        let stats = pipeline.process(frame);
        if !pose_is_finite(&stats.pose) && i > 0 {
            status = RunStatus::Diverged {
                reason: DivergenceReason::NonFinitePose,
                at_frame: i,
            };
            break; // this frame's pose is garbage: keep the clean prefix
        }
        gt.push(frame.gt_pose);
        frame_times.push(stats.timings.total());
        frame_works.push(kf_frame_work(
            config,
            intrinsics.width,
            intrinsics.height,
            stats.tracking_attempted,
            stats.integrated,
        ));
        let frame_tracked = stats.tracked || !stats.tracking_attempted;
        if frame_tracked {
            tracked += 1;
        }
        if monitor.observe(!frame_tracked) {
            status = RunStatus::Diverged {
                reason: DivergenceReason::TrackingCollapse,
                at_frame: i,
            };
            break;
        }
    }
    PerfReport::from_run(
        &gt,
        &pipeline.trajectory()[..gt.len()],
        &frame_times,
        &frame_works,
        tracked,
        status,
    )
}

/// Run the ElasticFusion pipeline over the first `n_frames` of `seq`, with
/// the same early-abort divergence handling as [`run_kfusion`].
pub fn run_elasticfusion(
    seq: &SyntheticSequence,
    config: &EFusionConfig,
    n_frames: usize,
) -> PerfReport {
    let n = n_frames.min(seq.len()).max(1);
    let intrinsics = seq.intrinsics();
    let mut pipeline = ElasticFusion::new(config.clone(), intrinsics, seq.gt_pose(0));
    let mut gt = Vec::with_capacity(n);
    let mut frame_times = Vec::with_capacity(n);
    let mut frame_works = Vec::with_capacity(n);
    let mut tracked = 0usize;
    let mut monitor = CollapseMonitor::new();
    let mut status = RunStatus::Completed;
    for i in 0..n {
        let frame = seq.cached_frame(i);
        let stats = pipeline.process(frame);
        if !pose_is_finite(&stats.pose) && i > 0 {
            status = RunStatus::Diverged {
                reason: DivergenceReason::NonFinitePose,
                at_frame: i,
            };
            break;
        }
        gt.push(frame.gt_pose);
        frame_times.push(stats.total_time());
        frame_works.push(ef_frame_work(config, intrinsics.width, intrinsics.height, stats.map_size));
        let frame_tracked = stats.tracked || i == 0;
        if frame_tracked {
            tracked += 1;
        }
        if monitor.observe(!frame_tracked) {
            status = RunStatus::Diverged {
                reason: DivergenceReason::TrackingCollapse,
                at_frame: i,
            };
            break;
        }
    }
    PerfReport::from_run(
        &gt,
        &pipeline.trajectory()[..gt.len()],
        &frame_times,
        &frame_works,
        tracked,
        status,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use icl_nuim_synth::{NoiseModel, SequenceConfig, SyntheticSequence, TrajectoryKind};

    fn seq() -> SyntheticSequence {
        SyntheticSequence::new(SequenceConfig {
            width: 64,
            height: 48,
            n_frames: 120,
            trajectory: TrajectoryKind::LivingRoomLoop,
            noise: NoiseModel::none(),
            seed: 0,
        })
    }

    #[test]
    fn kfusion_run_produces_sane_report() {
        let s = seq();
        let cfg = KFusionConfig { volume_resolution: 64, ..Default::default() };
        let r = run_kfusion(&s, &cfg, 8);
        assert_eq!(r.frames, 8);
        assert_eq!(r.status, RunStatus::Completed);
        assert!(r.mean_frame_time > 0.0);
        assert!(r.fps > 0.0);
        assert!(r.ate.mean.is_finite());
        assert!(r.tracked_fraction > 0.5, "tracked {}", r.tracked_fraction);
        assert!((r.total_time - r.mean_frame_time * 8.0).abs() < 1e-9);
    }

    #[test]
    fn elasticfusion_run_produces_sane_report() {
        let s = seq();
        let cfg = EFusionConfig::default();
        let r = run_elasticfusion(&s, &cfg, 8);
        assert_eq!(r.frames, 8);
        assert_eq!(r.status, RunStatus::Completed);
        assert!(r.mean_frame_time > 0.0);
        assert!(r.ate.mean.is_finite());
        assert!(r.tracked_fraction > 0.5);
    }

    #[test]
    fn work_proxy_is_deterministic_and_tracks_config_cost() {
        let s = seq();
        let small = KFusionConfig { volume_resolution: 64, ..Default::default() };
        let a = run_kfusion(&s, &small, 6);
        let b = run_kfusion(&s, &small, 6);
        assert!(a.mean_frame_work > 0.0 && a.mean_frame_work.is_finite());
        // Bit-identical across runs: the proxy never reads the clock.
        assert_eq!(a.mean_frame_work, b.mean_frame_work);
        assert_eq!(a.total_work, b.total_work);
        assert!((a.total_work - a.mean_frame_work * a.frames as f64).abs() < 1e-12);
        // A bigger volume must cost more proxy work (integration + raycast
        // scale with resolution).
        let big = KFusionConfig { volume_resolution: 128, ..small };
        let c = run_kfusion(&s, &big, 6);
        assert!(c.mean_frame_work > a.mean_frame_work);
    }

    #[test]
    fn ef_work_proxy_reflects_feature_flags() {
        let s = seq();
        let base = EFusionConfig::default();
        let a = run_elasticfusion(&s, &base, 6);
        assert!(a.mean_frame_work > 0.0 && a.mean_frame_work.is_finite());
        assert_eq!(a.mean_frame_work, run_elasticfusion(&s, &base, 6).mean_frame_work);
        // Fast odometry does strictly less proxy work per frame.
        let fast = EFusionConfig { fast_odom: true, ..base };
        let b = run_elasticfusion(&s, &fast, 6);
        assert!(b.mean_frame_work < a.mean_frame_work);
    }

    #[test]
    fn kfusion_tracking_beats_open_loop() {
        // Tracking every frame must beat never tracking on accuracy.
        let s = seq();
        let base = KFusionConfig { volume_resolution: 64, ..Default::default() };
        let good = run_kfusion(&s, &base, 10);
        let never = KFusionConfig {
            tracking_rate: 100, // effectively never re-localizes
            ..base
        };
        let bad = run_kfusion(&s, &never, 10);
        assert!(
            bad.ate.max > good.ate.max,
            "open-loop {} should exceed tracked {}",
            bad.ate.max,
            good.ate.max
        );
    }

    #[test]
    fn frame_count_clamped_to_sequence() {
        let s = seq();
        let cfg = KFusionConfig { volume_resolution: 64, ..Default::default() };
        let r = run_kfusion(&s, &cfg, 5);
        assert_eq!(r.frames, 5);
    }

    #[test]
    fn tracking_collapse_aborts_early_with_finite_report() {
        // Zero ICP iterations at every pyramid level: tracking is attempted
        // each frame (tracking_rate: 1) but can never converge, so the run
        // must trip the collapse detector instead of grinding through the
        // whole budget and returning garbage.
        let s = seq();
        let cfg = KFusionConfig {
            volume_resolution: 64,
            tracking_rate: 1,
            pyramid_iterations: [0, 0, 0],
            ..Default::default()
        };
        let r = run_kfusion(&s, &cfg, 40);
        match r.status {
            RunStatus::Diverged { reason, at_frame } => {
                assert_eq!(reason, DivergenceReason::TrackingCollapse);
                assert!(at_frame < 40, "collapse frame {at_frame}");
            }
            RunStatus::Completed => panic!("expected divergence, got completion: {r:?}"),
        }
        assert!(r.frames < 40, "aborted early, processed {}", r.frames);
        assert!(r.ate.mean.is_finite());
        assert!(r.mean_frame_time.is_finite() && r.mean_frame_time > 0.0);
        assert!(r.tracked_fraction < 0.5);
    }
}
