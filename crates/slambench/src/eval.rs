//! HyperMapper evaluator adapters.
//!
//! Two families:
//!
//! * **Simulated** — the analytic device models of `device-models`; these
//!   are what the paper-scale experiments use (3 000+ evaluations in
//!   seconds instead of the paper's 5 days of hardware time),
//! * **Native** — actually run the `kfusion` / `elasticfusion` pipelines
//!   on a synthetic sequence; used by tests and small-scale validation to
//!   confirm the simulated trade-off shapes match real pipeline behaviour.
//!
//! All evaluators return `[runtime, max ATE]`, both minimized, matching
//! the paper's two performance metrics.

use crate::runner::{run_elasticfusion, run_kfusion, PerfReport, RunStatus};
use crate::spaces::{ef_params_from_config, ef_pipeline_config, kf_params_from_config, kf_pipeline_config};
use device_models::{ef_ate, ef_frame_time, kf_ate, kf_frame_time, DeviceModel};
use hypermapper::{Configuration, EvalError, Evaluator};
use icl_nuim_synth::{SequenceConfig, SyntheticSequence};
use rayon::prelude::*;

/// How a native evaluator measures its runtime objective.
///
/// The accuracy objective (ATE) is identical in both modes — only the
/// runtime metric and the batch execution policy change.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum MeasurementMode {
    /// Runtime = mean wall-clock seconds per frame; batches run strictly
    /// sequentially so each configuration has the machine to itself. Use
    /// for final measurements of Pareto survivors (the default, and the
    /// historical behaviour).
    #[default]
    Timing,
    /// Runtime = deterministic work proxy (`PerfReport::mean_frame_work`,
    /// pseudo-seconds); batches run configurations concurrently after
    /// pre-warming the frame cache. Wall-clock contention cannot corrupt
    /// the objective because the proxy never reads the clock. Use during
    /// exploration, then re-measure the front in [`MeasurementMode::Timing`]
    /// (see `measure::remeasure_front`).
    Throughput,
}

/// Map a diverged run to a structured evaluation error; completed runs pass
/// through for metric extraction.
fn report_or_diverged(report: PerfReport) -> Result<PerfReport, EvalError> {
    match report.status {
        RunStatus::Completed => Ok(report),
        RunStatus::Diverged { .. } => {
            Err(EvalError::Diverged { reason: report.status.to_string() })
        }
    }
}

/// KFusion on an analytic device model: `[seconds/frame, max ATE (m)]`.
pub struct SimulatedKFusionEvaluator {
    device: DeviceModel,
}

impl SimulatedKFusionEvaluator {
    /// Evaluate on the given device model.
    pub fn new(device: DeviceModel) -> Self {
        SimulatedKFusionEvaluator { device }
    }

    /// The device being modeled.
    pub fn device(&self) -> &DeviceModel {
        &self.device
    }
}

impl Evaluator for SimulatedKFusionEvaluator {
    fn n_objectives(&self) -> usize {
        2
    }
    fn objective_names(&self) -> Vec<String> {
        vec!["runtime (s/frame)".into(), "max ATE (m)".into()]
    }
    fn evaluate(&self, config: &Configuration) -> Vec<f64> {
        let p = kf_params_from_config(config);
        vec![kf_frame_time(&p, &self.device), kf_ate(&p)]
    }
}

/// ElasticFusion on an analytic device model:
/// `[seconds for the 400-frame sequence, mean ATE (m)]` — Table I units.
pub struct SimulatedEFusionEvaluator {
    device: DeviceModel,
    /// Frames in the benchmark sequence (400 in the paper).
    pub sequence_frames: usize,
}

impl SimulatedEFusionEvaluator {
    /// Evaluate on the given device model with the paper's 400-frame
    /// sequence length.
    pub fn new(device: DeviceModel) -> Self {
        SimulatedEFusionEvaluator { device, sequence_frames: 400 }
    }
}

impl Evaluator for SimulatedEFusionEvaluator {
    fn n_objectives(&self) -> usize {
        2
    }
    fn objective_names(&self) -> Vec<String> {
        vec!["runtime (s/sequence)".into(), "ATE (m)".into()]
    }
    fn evaluate(&self, config: &Configuration) -> Vec<f64> {
        let p = ef_params_from_config(config);
        vec![
            ef_frame_time(&p, &self.device) * self.sequence_frames as f64,
            ef_ate(&p),
        ]
    }
}

/// KFusion actually executed over a synthetic sequence:
/// `[runtime, measured max ATE (m)]`, where the runtime objective depends
/// on the [`MeasurementMode`] (wall-clock s/frame or work-proxy
/// pseudo-s/frame).
pub struct NativeKFusionEvaluator {
    sequence: SyntheticSequence,
    n_frames: usize,
    mode: MeasurementMode,
}

impl NativeKFusionEvaluator {
    /// Run over the first `n_frames` of a sequence built from `config`, in
    /// [`MeasurementMode::Timing`].
    pub fn new(sequence_config: SequenceConfig, n_frames: usize) -> Self {
        Self::with_mode(sequence_config, n_frames, MeasurementMode::Timing)
    }

    /// Run over the first `n_frames` with an explicit measurement mode.
    pub fn with_mode(
        sequence_config: SequenceConfig,
        n_frames: usize,
        mode: MeasurementMode,
    ) -> Self {
        NativeKFusionEvaluator {
            sequence: SyntheticSequence::new(sequence_config),
            n_frames,
            mode,
        }
    }

    /// The shared (frame-cached) sequence all evaluations run over.
    pub fn sequence(&self) -> &SyntheticSequence {
        &self.sequence
    }

    /// The active measurement mode.
    pub fn mode(&self) -> MeasurementMode {
        self.mode
    }

    fn objectives(&self, report: &PerfReport) -> Vec<f64> {
        let runtime = match self.mode {
            MeasurementMode::Timing => report.mean_frame_time,
            MeasurementMode::Throughput => report.mean_frame_work,
        };
        vec![runtime, report.ate.max]
    }
}

impl Evaluator for NativeKFusionEvaluator {
    fn n_objectives(&self) -> usize {
        2
    }
    fn objective_names(&self) -> Vec<String> {
        match self.mode {
            MeasurementMode::Timing => {
                vec!["runtime (s/frame)".into(), "max ATE (m)".into()]
            }
            MeasurementMode::Throughput => {
                vec!["work (pseudo-s/frame)".into(), "max ATE (m)".into()]
            }
        }
    }
    fn evaluate(&self, config: &Configuration) -> Vec<f64> {
        let report = run_kfusion(&self.sequence, &kf_pipeline_config(config), self.n_frames);
        self.objectives(&report)
    }
    fn evaluate_batch(&self, configs: &[Configuration]) -> Vec<Vec<f64>> {
        match self.mode {
            // The pipelines are internally parallel (Rayon); running them
            // sequentially keeps per-config timing measurements honest.
            MeasurementMode::Timing => configs.iter().map(|c| self.evaluate(c)).collect(),
            // The work proxy is load-independent, so configurations may
            // share the machine. Warm the frame cache first so concurrent
            // workers never race on cold renders.
            MeasurementMode::Throughput => {
                self.sequence.prerender_first(self.n_frames);
                configs.par_iter().map(|c| self.evaluate(c)).collect()
            }
        }
    }
    fn try_evaluate(&self, config: &Configuration) -> Result<Vec<f64>, EvalError> {
        let report = report_or_diverged(run_kfusion(
            &self.sequence,
            &kf_pipeline_config(config),
            self.n_frames,
        ))?;
        Ok(self.objectives(&report))
    }
    fn try_evaluate_batch(&self, configs: &[Configuration]) -> Vec<Result<Vec<f64>, EvalError>> {
        match self.mode {
            MeasurementMode::Timing => configs.iter().map(|c| self.try_evaluate(c)).collect(),
            MeasurementMode::Throughput => {
                self.sequence.prerender_first(self.n_frames);
                configs.par_iter().map(|c| self.try_evaluate(c)).collect()
            }
        }
    }
}

/// ElasticFusion actually executed over a synthetic sequence, with the same
/// [`MeasurementMode`] split as [`NativeKFusionEvaluator`].
pub struct NativeElasticFusionEvaluator {
    sequence: SyntheticSequence,
    n_frames: usize,
    mode: MeasurementMode,
}

impl NativeElasticFusionEvaluator {
    /// Run over the first `n_frames` of a sequence built from `config`, in
    /// [`MeasurementMode::Timing`].
    pub fn new(sequence_config: SequenceConfig, n_frames: usize) -> Self {
        Self::with_mode(sequence_config, n_frames, MeasurementMode::Timing)
    }

    /// Run over the first `n_frames` with an explicit measurement mode.
    pub fn with_mode(
        sequence_config: SequenceConfig,
        n_frames: usize,
        mode: MeasurementMode,
    ) -> Self {
        NativeElasticFusionEvaluator {
            sequence: SyntheticSequence::new(sequence_config),
            n_frames,
            mode,
        }
    }

    /// The shared (frame-cached) sequence all evaluations run over.
    pub fn sequence(&self) -> &SyntheticSequence {
        &self.sequence
    }

    /// The active measurement mode.
    pub fn mode(&self) -> MeasurementMode {
        self.mode
    }

    fn objectives(&self, report: &PerfReport) -> Vec<f64> {
        let runtime = match self.mode {
            MeasurementMode::Timing => report.mean_frame_time,
            MeasurementMode::Throughput => report.mean_frame_work,
        };
        vec![runtime, report.ate.mean]
    }
}

impl Evaluator for NativeElasticFusionEvaluator {
    fn n_objectives(&self) -> usize {
        2
    }
    fn objective_names(&self) -> Vec<String> {
        match self.mode {
            MeasurementMode::Timing => {
                vec!["runtime (s/frame)".into(), "mean ATE (m)".into()]
            }
            MeasurementMode::Throughput => {
                vec!["work (pseudo-s/frame)".into(), "mean ATE (m)".into()]
            }
        }
    }
    fn evaluate(&self, config: &Configuration) -> Vec<f64> {
        let report = run_elasticfusion(&self.sequence, &ef_pipeline_config(config), self.n_frames);
        self.objectives(&report)
    }
    fn evaluate_batch(&self, configs: &[Configuration]) -> Vec<Vec<f64>> {
        match self.mode {
            MeasurementMode::Timing => configs.iter().map(|c| self.evaluate(c)).collect(),
            MeasurementMode::Throughput => {
                self.sequence.prerender_first(self.n_frames);
                configs.par_iter().map(|c| self.evaluate(c)).collect()
            }
        }
    }
    fn try_evaluate(&self, config: &Configuration) -> Result<Vec<f64>, EvalError> {
        let report = report_or_diverged(run_elasticfusion(
            &self.sequence,
            &ef_pipeline_config(config),
            self.n_frames,
        ))?;
        Ok(self.objectives(&report))
    }
    fn try_evaluate_batch(&self, configs: &[Configuration]) -> Vec<Result<Vec<f64>, EvalError>> {
        match self.mode {
            MeasurementMode::Timing => configs.iter().map(|c| self.try_evaluate(c)).collect(),
            MeasurementMode::Throughput => {
                self.sequence.prerender_first(self.n_frames);
                configs.par_iter().map(|c| self.try_evaluate(c)).collect()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spaces::{
        elasticfusion_default_config, elasticfusion_space, kfusion_default_config, kfusion_space,
    };
    use device_models::{gtx780ti, odroid_xu3};
    use icl_nuim_synth::{NoiseModel, TrajectoryKind};

    #[test]
    fn simulated_kfusion_default_anchors() {
        let space = kfusion_space();
        let eval = SimulatedKFusionEvaluator::new(odroid_xu3());
        let out = eval.evaluate(&kfusion_default_config(&space));
        assert_eq!(out.len(), 2);
        let fps = 1.0 / out[0];
        assert!((4.0..=8.0).contains(&fps), "FPS {fps}");
        assert!((0.03..=0.06).contains(&out[1]), "ATE {}", out[1]);
    }

    #[test]
    fn simulated_ef_default_anchors() {
        let space = elasticfusion_space();
        let eval = SimulatedEFusionEvaluator::new(gtx780ti());
        let out = eval.evaluate(&elasticfusion_default_config(&space));
        assert!((17.0..=28.0).contains(&out[0]), "sequence time {}", out[0]);
        assert!((0.045..=0.07).contains(&out[1]), "ATE {}", out[1]);
    }

    #[test]
    fn simulated_evaluators_deterministic() {
        let space = kfusion_space();
        let eval = SimulatedKFusionEvaluator::new(odroid_xu3());
        let c = space.config_at(123_456);
        assert_eq!(eval.evaluate(&c), eval.evaluate(&c));
    }

    #[test]
    fn native_kfusion_evaluator_runs() {
        let space = kfusion_space();
        let eval = NativeKFusionEvaluator::new(
            icl_nuim_synth::SequenceConfig {
                width: 48,
                height: 36,
                n_frames: 100,
                trajectory: TrajectoryKind::LivingRoomLoop,
                noise: NoiseModel::none(),
                seed: 0,
            },
            4,
        );
        // A small-volume config to keep the test fast.
        let c = space.config_from_values(&[64.0, 0.2, 2.0, 1.0, 1e-4, 2.0, 4.0, 3.0, 2.0]);
        let out = eval.evaluate(&c);
        assert_eq!(out.len(), 2);
        assert!(out[0] > 0.0 && out[0].is_finite());
        assert!(out[1] >= 0.0 && out[1].is_finite());
    }

    #[test]
    fn native_evaluation_renders_each_frame_once() {
        // The whole point of the frame cache: evaluating many configurations
        // over the same sequence renders each frame exactly once, not once
        // per configuration.
        let space = kfusion_space();
        let eval = NativeKFusionEvaluator::new(
            icl_nuim_synth::SequenceConfig {
                width: 40,
                height: 30,
                n_frames: 3,
                trajectory: TrajectoryKind::LivingRoomLoop,
                noise: NoiseModel::none(),
                seed: 0,
            },
            3,
        );
        assert_eq!(eval.sequence().render_count(), 0);
        let configs: Vec<_> = (0..10)
            .map(|_| space.config_from_values(&[64.0, 0.2, 2.0, 1.0, 1e-4, 2.0, 4.0, 3.0, 2.0]))
            .collect();
        let outs = eval.evaluate_batch(&configs);
        assert_eq!(outs.len(), 10);
        assert_eq!(
            eval.sequence().render_count(),
            3,
            "10 evaluations over 3 frames must render exactly 3 frames"
        );
    }

    #[test]
    fn throughput_mode_shares_ate_and_swaps_runtime() {
        let seq_cfg = icl_nuim_synth::SequenceConfig {
            width: 40,
            height: 30,
            n_frames: 3,
            trajectory: TrajectoryKind::LivingRoomLoop,
            noise: NoiseModel::none(),
            seed: 0,
        };
        let space = kfusion_space();
        let c = space.config_from_values(&[64.0, 0.2, 2.0, 1.0, 1e-4, 2.0, 4.0, 3.0, 2.0]);
        let timing = NativeKFusionEvaluator::new(seq_cfg.clone(), 3);
        let through = NativeKFusionEvaluator::with_mode(seq_cfg, 3, MeasurementMode::Throughput);
        assert_eq!(timing.mode(), MeasurementMode::Timing);
        assert_eq!(through.mode(), MeasurementMode::Throughput);
        let t = timing.evaluate(&c);
        let w = through.evaluate(&c);
        // Same pipeline, same frames: accuracy is identical across modes.
        assert_eq!(t[1], w[1], "ATE must not depend on the measurement mode");
        // Work proxy is deterministic; wall-clock is not.
        assert_eq!(w, through.evaluate(&c));
        assert!(w[0] > 0.0 && w[0].is_finite());
        assert!(through.objective_names()[0].contains("pseudo"));
    }

    #[test]
    fn throughput_batch_prewarms_and_matches_serial() {
        let space = kfusion_space();
        let eval = NativeKFusionEvaluator::with_mode(
            icl_nuim_synth::SequenceConfig {
                width: 40,
                height: 30,
                n_frames: 3,
                trajectory: TrajectoryKind::LivingRoomLoop,
                noise: NoiseModel::none(),
                seed: 0,
            },
            3,
            MeasurementMode::Throughput,
        );
        let configs: Vec<_> = [
            [64.0, 0.2, 2.0, 1.0, 1e-4, 2.0, 4.0, 3.0, 2.0],
            [64.0, 0.1, 2.0, 1.0, 1e-4, 2.0, 4.0, 3.0, 2.0],
            [64.0, 0.2, 4.0, 1.0, 1e-4, 2.0, 4.0, 3.0, 2.0],
        ]
        .iter()
        .map(|v| space.config_from_values(v))
        .collect();
        let batch = eval.try_evaluate_batch(&configs);
        assert_eq!(
            eval.sequence().render_count(),
            3,
            "batch must prerender each frame exactly once"
        );
        for (c, out) in configs.iter().zip(&batch) {
            assert_eq!(out, &eval.try_evaluate(c), "batch must match serial per config");
        }
    }

    #[test]
    fn native_ef_evaluator_runs() {
        let space = elasticfusion_space();
        let eval = NativeElasticFusionEvaluator::new(
            icl_nuim_synth::SequenceConfig {
                width: 48,
                height: 36,
                n_frames: 100,
                trajectory: TrajectoryKind::LivingRoomLoop,
                noise: NoiseModel::none(),
                seed: 0,
            },
            4,
        );
        let out = eval.evaluate(&elasticfusion_default_config(&space));
        assert!(out[0] > 0.0 && out[1].is_finite());
    }
}
