//! Trajectory accuracy metrics.

use slam_geometry::SE3;

/// Absolute trajectory error statistics, in meters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AteStats {
    /// Mean per-frame translational error (the SLAMBench ATE).
    pub mean: f64,
    /// Maximum per-frame translational error (the validity metric in
    /// Figs. 3–4 of the paper).
    pub max: f64,
    /// Root-mean-square error.
    pub rmse: f64,
    /// Number of frames compared.
    pub frames: usize,
}

/// Compute the absolute trajectory error between a ground-truth and an
/// estimated trajectory, SLAMBench-style: both trajectories are expressed
/// relative to their first pose (removing the arbitrary initial offset)
/// and the per-frame translational differences are aggregated.
///
/// # Panics
/// If the trajectories have different lengths or are empty.
pub fn ate(ground_truth: &[SE3], estimated: &[SE3]) -> AteStats {
    assert_eq!(
        ground_truth.len(),
        estimated.len(),
        "trajectory length mismatch"
    );
    assert!(!ground_truth.is_empty(), "empty trajectories");

    let gt0_inv = ground_truth[0].inverse();
    let est0_inv = estimated[0].inverse();
    let mut sum = 0.0f64;
    let mut sum_sq = 0.0f64;
    let mut max = 0.0f64;
    for (gt, est) in ground_truth.iter().zip(estimated) {
        // Positions relative to the respective first frame.
        let p_gt = gt0_inv.transform_point(gt.t);
        let p_est = est0_inv.transform_point(est.t);
        let err = (p_gt - p_est).norm() as f64;
        sum += err;
        sum_sq += err * err;
        max = max.max(err);
    }
    let n = ground_truth.len() as f64;
    AteStats {
        mean: sum / n,
        max,
        rmse: (sum_sq / n).sqrt(),
        frames: ground_truth.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use slam_geometry::{Quat, Vec3};

    fn pose(x: f32, y: f32, z: f32) -> SE3 {
        SE3::from_translation(Vec3::new(x, y, z))
    }

    #[test]
    fn identical_trajectories_have_zero_error() {
        let traj: Vec<SE3> = (0..10).map(|i| pose(i as f32 * 0.1, 0.0, 0.0)).collect();
        let s = ate(&traj, &traj.clone());
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.max, 0.0);
        assert_eq!(s.rmse, 0.0);
        assert_eq!(s.frames, 10);
    }

    #[test]
    fn constant_offset_in_first_frame_is_removed() {
        // Estimated = ground truth shifted by a constant: after first-frame
        // anchoring the error is zero.
        let gt: Vec<SE3> = (0..5).map(|i| pose(i as f32, 0.0, 0.0)).collect();
        let est: Vec<SE3> = gt
            .iter()
            .map(|p| SE3::from_translation(Vec3::new(0.0, 3.0, 0.0)).compose(p))
            .collect();
        let s = ate(&gt, &est);
        assert!(s.mean < 1e-6, "mean {}", s.mean);
    }

    #[test]
    fn linear_drift_statistics() {
        // Estimated drifts 0.01 per frame in x.
        let gt: Vec<SE3> = (0..11).map(|_| pose(0.0, 0.0, 0.0)).collect();
        let est: Vec<SE3> = (0..11).map(|i| pose(i as f32 * 0.01, 0.0, 0.0)).collect();
        let s = ate(&gt, &est);
        assert!((s.max - 0.10).abs() < 1e-5);
        assert!((s.mean - 0.05).abs() < 1e-5);
        assert!(s.rmse >= s.mean && s.rmse <= s.max);
    }

    #[test]
    fn constant_rigid_offset_cancels_but_progressive_rotation_does_not() {
        let gt: Vec<SE3> = (0..20).map(|i| pose(i as f32 * 0.1, 0.0, 0.0)).collect();
        // A constant left-multiplied rigid offset is removed by the
        // first-frame anchoring.
        let rot = SE3::from_quat_translation(Quat::from_axis_angle(Vec3::Z, 0.1), Vec3::ZERO);
        let est_const: Vec<SE3> = gt.iter().map(|p| rot.compose(p)).collect();
        assert!(ate(&gt, &est_const).max < 1e-5);
        // Progressive rotational drift is not.
        let est_drift: Vec<SE3> = gt
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let r = SE3::from_quat_translation(
                    Quat::from_axis_angle(Vec3::Z, 0.02 * i as f32),
                    Vec3::ZERO,
                );
                r.compose(p)
            })
            .collect();
        let s = ate(&gt, &est_drift);
        assert!(s.max > s.mean);
        assert!(s.max > 0.05, "max {}", s.max);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        ate(&[SE3::IDENTITY], &[SE3::IDENTITY, SE3::IDENTITY]);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_trajectories_panic() {
        ate(&[], &[]);
    }
}
