//! The paper's algorithmic configuration spaces (§III-B, §III-C).

use device_models::{EfParams, KfParams};
use elasticfusion::EFusionConfig;
use hypermapper::{Configuration, ParamSpace};
use kfusion::KFusionConfig;

/// The accuracy validity limit used in Figs. 3–4: max ATE < 5 cm.
pub const ACCURACY_LIMIT_M: f64 = 0.05;

/// The KFusion algorithmic space of §III-B — exactly 1 800 000
/// configurations:
///
/// | parameter | values |
/// |---|---|
/// | volume resolution | 64, 128, 256 |
/// | µ | 0.0125 … 0.4 (6 values, ×2) |
/// | compute size ratio | 1, 2, 4, 8 |
/// | tracking rate | 1 … 5 |
/// | ICP threshold | 1e-5 … 1e-1 (5 decades, log-encoded) |
/// | integration rate | 1 … 10 |
/// | pyramid level 0 iterations | 1 … 5 |
/// | pyramid level 1 iterations | 0 … 4 |
/// | pyramid level 2 iterations | 0 … 3 |
pub fn kfusion_space() -> ParamSpace {
    ParamSpace::builder()
        .ordinal("volume-resolution", [64.0, 128.0, 256.0])
        .ordinal_log("mu", (0..6).map(|i| 0.0125 * 2f64.powi(i)))
        .ordinal("compute-size-ratio", [1.0, 2.0, 4.0, 8.0])
        .ordinal("tracking-rate", (1..=5).map(f64::from))
        .ordinal_log("icp-threshold", (0..5).map(|i| 10f64.powi(-5 + i)))
        .ordinal("integration-rate", (1..=10).map(f64::from))
        .ordinal("pyramid-l0", (1..=5).map(f64::from))
        .ordinal("pyramid-l1", (0..=4).map(f64::from))
        .ordinal("pyramid-l2", (0..=3).map(f64::from))
        .build()
        // lint: allow(no-unaudited-panic): static space literal, validated by this crate's tests
        .expect("static space definition is valid")
}

/// The ElasticFusion algorithmic space of §III-C — 460 800 configurations
/// ("roughly 450,000" in the paper):
///
/// | parameter | values |
/// |---|---|
/// | ICP/RGB weight | 0.5 … 12.5 step 0.5 (25 values) |
/// | depth cutoff | 1 … 18 m (18 values) |
/// | confidence threshold | 0.5 … 16 step 0.5 (32 values) |
/// | 5 boolean flags | SO3-disable, open-loop, relocalisation, fast-odometry, frame-to-frame RGB |
pub fn elasticfusion_space() -> ParamSpace {
    ParamSpace::builder()
        .ordinal("icp-rgb-weight", (1..=25).map(|i| i as f64 * 0.5))
        .ordinal("depth-cutoff", (1..=18).map(f64::from))
        .ordinal("confidence", (1..=32).map(|i| i as f64 * 0.5))
        .boolean("so3-disabled")
        .boolean("open-loop")
        .boolean("relocalisation")
        .boolean("fast-odom")
        .boolean("frame-to-frame-rgb")
        .build()
        // lint: allow(no-unaudited-panic): static space literal, validated by this crate's tests
        .expect("static space definition is valid")
}

/// Decode a `kfusion_space` configuration into model parameters.
pub fn kf_params_from_config(config: &Configuration) -> KfParams {
    KfParams {
        volume_resolution: config.value_f64(0),
        mu: config.value_f64(1),
        compute_size_ratio: config.value_f64(2),
        tracking_rate: config.value_f64(3),
        icp_threshold: config.value_f64(4),
        integration_rate: config.value_f64(5),
        pyramid: [config.value_f64(6), config.value_f64(7), config.value_f64(8)],
    }
}

/// Decode a `kfusion_space` configuration into a runnable pipeline
/// configuration.
pub fn kf_pipeline_config(config: &Configuration) -> KFusionConfig {
    KFusionConfig {
        volume_resolution: config.value_usize(0),
        volume_size: 7.0,
        mu: config.value_f64(1) as f32,
        pyramid_iterations: [
            config.value_usize(6),
            config.value_usize(7),
            config.value_usize(8),
        ],
        compute_size_ratio: config.value_usize(2),
        tracking_rate: config.value_usize(3),
        icp_threshold: config.value_f64(4) as f32,
        integration_rate: config.value_usize(5),
    }
}

/// Decode an `elasticfusion_space` configuration into model parameters.
pub fn ef_params_from_config(config: &Configuration) -> EfParams {
    EfParams {
        icp_weight: config.value_f64(0),
        depth_cutoff: config.value_f64(1),
        confidence: config.value_f64(2),
        so3_disabled: config.value_bool(3),
        open_loop: config.value_bool(4),
        relocalisation: config.value_bool(5),
        fast_odom: config.value_bool(6),
        frame_to_frame_rgb: config.value_bool(7),
    }
}

/// Decode an `elasticfusion_space` configuration into a runnable pipeline
/// configuration.
pub fn ef_pipeline_config(config: &Configuration) -> EFusionConfig {
    EFusionConfig {
        icp_rgb_weight: config.value_f64(0) as f32,
        depth_cutoff: config.value_f64(1) as f32,
        confidence_threshold: config.value_f64(2) as f32,
        so3_disabled: config.value_bool(3),
        open_loop: config.value_bool(4),
        relocalisation: config.value_bool(5),
        fast_odom: config.value_bool(6),
        frame_to_frame_rgb: config.value_bool(7),
        time_window: 100,
    }
}

/// The SLAMBench default KFusion configuration as a point in
/// `kfusion_space`.
pub fn kfusion_default_config(space: &ParamSpace) -> Configuration {
    space.config_from_values(&[256.0, 0.1, 1.0, 1.0, 1e-5, 2.0, 5.0, 4.0, 3.0])
}

/// The developers' default ElasticFusion configuration (Table I) as a
/// point in `elasticfusion_space`.
pub fn elasticfusion_default_config(space: &ParamSpace) -> Configuration {
    space.config_from_values(&[10.0, 3.0, 10.0, 1.0, 0.0, 1.0, 0.0, 0.0])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kfusion_space_size_matches_paper() {
        assert_eq!(kfusion_space().size(), 1_800_000);
    }

    #[test]
    fn elasticfusion_space_size_roughly_450k() {
        let size = elasticfusion_space().size();
        assert_eq!(size, 460_800);
        assert!((400_000..=500_000).contains(&size));
    }

    #[test]
    fn kf_decode_roundtrip() {
        let space = kfusion_space();
        let c = kfusion_default_config(&space);
        let p = kf_params_from_config(&c);
        assert_eq!(p.volume_resolution, 256.0);
        assert!((p.mu - 0.1).abs() < 1e-9);
        assert_eq!(p.compute_size_ratio, 1.0);
        assert_eq!(p.tracking_rate, 1.0);
        assert!((p.icp_threshold - 1e-5).abs() < 1e-12);
        assert_eq!(p.integration_rate, 2.0);
        let pc = kf_pipeline_config(&c);
        pc.validate().unwrap();
        assert_eq!(pc.volume_resolution, 256);
        assert_eq!(pc.pyramid_iterations, [5, 4, 3]);
    }

    #[test]
    fn ef_decode_roundtrip() {
        let space = elasticfusion_space();
        let c = elasticfusion_default_config(&space);
        let p = ef_params_from_config(&c);
        assert_eq!(p.icp_weight, 10.0);
        assert_eq!(p.depth_cutoff, 3.0);
        assert_eq!(p.confidence, 10.0);
        assert!(p.so3_disabled);
        assert!(!p.open_loop);
        assert!(p.relocalisation);
        assert!(!p.fast_odom);
        assert!(!p.frame_to_frame_rgb);
        let pc = ef_pipeline_config(&c);
        pc.validate().unwrap();
    }

    #[test]
    fn every_kf_config_decodes_validly() {
        // Sample scattered flat indices and check pipeline-config validity.
        let space = kfusion_space();
        for i in (0..space.size()).step_by(97_651) {
            let c = space.config_at(i);
            let pc = kf_pipeline_config(&c);
            pc.validate().unwrap_or_else(|e| panic!("config {i}: {e}"));
            let p = kf_params_from_config(&c);
            assert!(p.mu > 0.0 && p.volume_resolution >= 64.0);
        }
    }

    #[test]
    fn every_ef_config_decodes_validly() {
        let space = elasticfusion_space();
        for i in (0..space.size()).step_by(23_456) {
            let c = space.config_at(i);
            ef_pipeline_config(&c).validate().unwrap();
        }
    }

    #[test]
    fn log_features_used_for_mu_and_icp() {
        let space = kfusion_space();
        let c = kfusion_default_config(&space);
        let f = space.features(&c);
        // mu = 0.1 → log10 = -1; icp = 1e-5 → -5.
        assert!((f[1] + 1.0).abs() < 1e-6, "mu feature {}", f[1]);
        assert!((f[4] + 5.0).abs() < 1e-6, "icp feature {}", f[4]);
    }

    #[test]
    fn table_1_rows_exist_in_ef_space() {
        // The Pareto rows of Table I must be representable points.
        let space = elasticfusion_space();
        for (icp, depth, conf) in [(5.0, 6.0, 9.0), (4.0, 6.0, 9.0), (2.0, 10.0, 4.0), (1.0, 10.0, 4.0)] {
            let c = space.config_from_values(&[icp, depth, conf, 0.0, 0.0, 1.0, 1.0, 0.0]);
            let p = ef_params_from_config(&c);
            assert_eq!(p.icp_weight, icp);
            assert_eq!(p.depth_cutoff, depth);
            assert_eq!(p.confidence, conf);
        }
    }
}
