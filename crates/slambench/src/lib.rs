//! A SLAMBench-style benchmarking harness.
//!
//! Reimplements the role SLAMBench (Nardi et al., ICRA 2015) plays in the
//! paper: a common measurement layer over multiple SLAM pipelines exposing
//!
//! * the **ATE metric** ([`metrics`]) — mean/max absolute trajectory error,
//! * **pipeline runners** ([`runner`]) that execute `kfusion` /
//!   `elasticfusion` over a synthetic sequence and collect per-kernel
//!   timings and accuracy,
//! * the **algorithmic configuration spaces** ([`spaces`]) of §III-B
//!   (KFusion, ~1.8 M points) and §III-C (ElasticFusion, ~450 K points),
//! * **evaluator adapters** ([`eval`]) plugging either the real pipelines
//!   or the analytic device models into HyperMapper.

pub mod eval;
pub mod measure;
pub mod metrics;
pub mod runner;
pub mod spaces;

pub use eval::{
    MeasurementMode, NativeElasticFusionEvaluator, NativeKFusionEvaluator,
    SimulatedEFusionEvaluator, SimulatedKFusionEvaluator,
};
pub use measure::{remeasure_front, TimedFrontEntry};
pub use metrics::{ate, AteStats};
pub use runner::{run_elasticfusion, run_kfusion, DivergenceReason, PerfReport, RunStatus};
pub use spaces::{
    ef_params_from_config, elasticfusion_space, kf_params_from_config, kfusion_space,
    ACCURACY_LIMIT_M,
};
