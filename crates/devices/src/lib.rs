//! Analytic performance/accuracy models of SLAM pipelines on real devices.
//!
//! The paper evaluates thousands of algorithmic configurations on physical
//! hardware (ODROID-XU3, ASUS T200TA, an NVIDIA GTX 780 Ti desktop, and 83
//! crowd-sourced Android devices). Those machines are not available here,
//! so this crate substitutes them with **analytic device models** (see
//! DESIGN.md §3):
//!
//! * [`cost`] — per-frame runtime as a sum of per-kernel cost terms whose
//!   scaling in each algorithmic parameter follows the kernels' real
//!   asymptotic complexity, divided by per-device throughput coefficients,
//! * [`accuracy`] — trajectory error as an analytic function of the
//!   algorithmic parameters, calibrated to the paper's reported numbers
//!   (default KFusion ≈ 4.5 cm, default ElasticFusion ≈ 5.6 cm, Table I
//!   Pareto points ≈ 2.7–4.2 cm),
//! * [`platform`] — the three named platforms of the paper,
//! * [`catalog`] — 83 parameterized mobile SoC models standing in for the
//!   crowd-sourcing experiment.
//!
//! Both models add deterministic configuration-hashed perturbations so the
//! response surfaces are non-convex and multi-modal like Fig. 1 of the
//! paper — exactly the regime HyperMapper is designed for.

pub mod accuracy;
pub mod catalog;
pub mod cost;
pub mod platform;

pub use accuracy::{ef_ate, kf_ate};
pub use catalog::crowd_devices;
pub use cost::{ef_frame_time, kf_frame_time, EfParams, KfParams};
pub use platform::{asus_t200ta, gtx780ti, odroid_xu3, DeviceModel};

/// Deterministic hash-based perturbation in `[-1, 1]` derived from a
/// parameter fingerprint — used by both cost and accuracy models to create
/// reproducible multi-modal structure.
pub(crate) fn hash_noise(bits: u64, salt: u64) -> f64 {
    let mut z = bits ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 52) as f64 - 1.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_noise_in_range_and_deterministic() {
        for i in 0..1000u64 {
            let n = hash_noise(i, 7);
            assert!((-1.0..=1.0).contains(&n));
            assert_eq!(n, hash_noise(i, 7));
        }
    }

    #[test]
    fn hash_noise_salt_changes_values() {
        let same = (0..100u64).filter(|&i| hash_noise(i, 1) == hash_noise(i, 2)).count();
        assert!(same < 5);
    }

    #[test]
    fn hash_noise_roughly_centered() {
        let mean: f64 = (0..10_000u64).map(|i| hash_noise(i, 3)).sum::<f64>() / 10_000.0;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }
}
