//! The crowd-sourcing device catalog.
//!
//! The paper's Android app collected results from 83 phones and tablets.
//! This module generates 83 deterministic device models spanning the
//! 2013–2017 mobile SoC landscape (mostly ARM Mali/Adreno/PowerVR parts,
//! as in the paper's crowd), each with its own kernel-throughput balance.

use crate::platform::DeviceModel;

/// SoC families seeding the catalog: (name, relative GPU compute,
/// relative memory bandwidth, relative overhead).
const SOC_FAMILIES: [(&str, f64, f64, f64); 21] = [
    ("Snapdragon 400 / Adreno 305", 0.25, 0.35, 1.8),
    ("Snapdragon 600 / Adreno 320", 0.45, 0.55, 1.5),
    ("Snapdragon 800 / Adreno 330", 0.75, 0.80, 1.2),
    ("Snapdragon 801 / Adreno 330", 0.80, 0.85, 1.2),
    ("Snapdragon 805 / Adreno 420", 1.05, 1.10, 1.1),
    ("Snapdragon 810 / Adreno 430", 1.25, 1.20, 1.0),
    ("Snapdragon 820 / Adreno 530", 1.90, 1.60, 0.9),
    ("Exynos 5420 / Mali-T628", 0.95, 0.90, 1.2),
    ("Exynos 5422 / Mali-T628", 1.00, 1.00, 1.0),
    ("Exynos 5433 / Mali-T760", 1.25, 1.15, 1.0),
    ("Exynos 7420 / Mali-T760", 1.55, 1.40, 0.9),
    ("Exynos 8890 / Mali-T880", 2.00, 1.70, 0.85),
    ("Kirin 925 / Mali-T628", 0.90, 0.85, 1.3),
    ("Kirin 935 / Mali-T628", 0.95, 0.90, 1.2),
    ("Kirin 950 / Mali-T880", 1.60, 1.45, 0.95),
    ("MediaTek MT6592 / Mali-450", 0.35, 0.45, 1.7),
    ("MediaTek MT6752 / Mali-T760", 0.80, 0.75, 1.3),
    ("MediaTek Helio X10 / PowerVR G6200", 0.85, 0.80, 1.25),
    ("Tegra K1 / Kepler GK20A", 1.70, 1.30, 1.0),
    ("Atom Z3580 / PowerVR G6430", 0.90, 0.95, 1.3),
    ("Atom Z3795 / HD Graphics", 1.05, 1.05, 1.25),
];

/// Device form factors modulating the SoC's sustained performance and the
/// driver/dispatch overhead (thermals, memory configuration, OpenCL driver
/// quality): (suffix, performance multiplier, overhead multiplier).
const FORMS: [(&str, f64, f64); 4] = [
    ("phone", 0.85, 3.0),
    ("phone (flagship)", 1.0, 1.2),
    ("tablet", 1.05, 2.0),
    ("tablet (budget)", 0.75, 7.0),
];

/// Deterministic catalog of exactly 83 crowd-sourced device models, built
/// from SoC family × form factor with per-unit binning variation.
pub fn crowd_devices() -> Vec<DeviceModel> {
    // The ODROID-XU3 rates are the catalog's reference point (Exynos 5422).
    let reference = crate::platform::odroid_xu3();
    let mut devices = Vec::with_capacity(83);
    let mut i = 0usize;
    'outer: for (fi, (family, gpu, bw, ovh)) in SOC_FAMILIES.iter().enumerate() {
        for (fo, (form, mult, ovh_mult)) in FORMS.iter().enumerate() {
            if devices.len() == 83 {
                break 'outer;
            }
            // Per-unit silicon/thermal variation, deterministic per slot.
            let unit = 1.0 + 0.12 * crate::hash_noise((fi * 7 + fo) as u64, 0xC0FFEE);
            let g = gpu * mult * unit;
            let b = bw * mult * unit;
            devices.push(DeviceModel {
                name: format!("{family} {form}"),
                filter_rate: reference.filter_rate * g,
                icp_rate: reference.icp_rate * g,
                integrate_rate: reference.integrate_rate * b,
                raycast_rate: reference.raycast_rate * (0.5 * g + 0.5 * b),
                frame_overhead: reference.frame_overhead * ovh * ovh_mult,
                seed: 0xC0DE + i as u64,
            });
            i += 1;
        }
    }
    // 21 families × 4 forms = 84 slots; the loop stops at exactly 83,
    // matching the paper's crowd size.
    debug_assert_eq!(devices.len(), 83);
    devices
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exactly_83_devices() {
        assert_eq!(crowd_devices().len(), 83);
    }

    #[test]
    fn names_are_unique() {
        let devs = crowd_devices();
        let names: std::collections::HashSet<_> = devs.iter().map(|d| d.name.clone()).collect();
        assert_eq!(names.len(), devs.len());
    }

    #[test]
    fn seeds_are_unique() {
        let devs = crowd_devices();
        let seeds: std::collections::HashSet<_> = devs.iter().map(|d| d.seed).collect();
        assert_eq!(seeds.len(), devs.len());
    }

    #[test]
    fn rates_positive_and_varied() {
        let devs = crowd_devices();
        for d in &devs {
            assert!(d.icp_rate > 0.0 && d.integrate_rate > 0.0);
        }
        let min = devs.iter().map(|d| d.icp_rate).fold(f64::INFINITY, f64::min);
        let max = devs.iter().map(|d| d.icp_rate).fold(0.0, f64::max);
        // The market spans a wide performance range.
        assert!(max / min > 3.0, "range {}..{}", min, max);
    }

    #[test]
    fn deterministic() {
        let a = crowd_devices();
        let b = crowd_devices();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x, y);
        }
    }
}
