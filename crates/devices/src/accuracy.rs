//! Analytic trajectory-error models.
//!
//! Accuracy is a property of the algorithm and dataset, not the device, so
//! these models take only the algorithmic parameters. They are calibrated
//! to the paper's anchors on the ICL-NUIM Living Room 2 sequence:
//!
//! * default KFusion → max ATE ≈ 4.47 cm,
//! * default ElasticFusion → 5.58 cm; Table I Pareto rows 4.20 / 3.32 /
//!   3.02 / 2.69 cm at the corresponding parameter values.

use crate::cost::{EfParams, KfParams};
use crate::hash_noise;

/// Max absolute trajectory error (meters) of KFusion under `params`.
///
/// Effect directions follow the real pipeline behaviour measured in the
/// `kfusion` crate and the paper:
/// * finer volumes track better (less TSDF quantization),
/// * µ must resolve at least ~2 voxels; a µ below that is degenerate,
/// * coarser inputs (csr) and skipped tracking/integration add drift,
/// * loose ICP thresholds leave residual misalignment each frame,
/// * too few pyramid iterations under-converge.
pub fn kf_ate(params: &KfParams) -> f64 {
    let vr = params.volume_resolution.max(8.0);
    let voxel = 7.0 / vr; // volume edge fixed at 7 m as in the `kfusion` crate

    // Penalty terms, calibrated jointly so that (a) the default lands at
    // the paper's 0.0447 m and (b) ~10 % of uniformly random
    // configurations fall under the 5 cm validity limit, matching the
    // 333/3000 valid random samples of Fig. 3a.
    let mut penalty = 0.0;
    // TSDF quantization: sub-voxel ICP bias accumulates.
    penalty += ((256.0 / vr).powf(0.8) - 1.0) * 0.0021;
    // Input resolution: fewer ICP constraints.
    let csr = params.compute_size_ratio.max(1.0);
    penalty += (csr - 1.0).powf(1.3) * 0.0011;
    // Skipping localization lets open-loop motion accumulate.
    penalty += (params.tracking_rate - 1.0) * 0.0019;
    // Sparse integration leaves holes the tracker slides into.
    penalty += (params.integration_rate - 1.0).max(0.0) * 0.0003;
    // Early ICP termination.
    let log_thr = params.icp_threshold.max(1e-12).log10();
    if log_thr > -4.0 {
        penalty += (log_thr + 4.0) * 0.0018;
    }
    // µ vs. voxel size: the truncation band must span ≥ ~2 voxels.
    let mu = params.mu.max(1e-4);
    if mu < 2.0 * voxel {
        penalty += (2.0 * voxel / mu - 1.0) * 0.012;
    }
    // Very large µ smears thin structures.
    if mu > 0.3 {
        penalty += (mu - 0.3) * 0.009;
    }
    // Under-iterated pyramids.
    let total_iters = params.pyramid[0] + params.pyramid[1] * 0.5 + params.pyramid[2] * 0.25;
    if total_iters < 8.0 {
        penalty += (8.0 - total_iters) * 0.0009;
    }
    let err = 0.040 + penalty;

    // Multi-modal perturbation plus a heavy tail of outright tracking
    // failures (configurations that lose the camera mid-sequence).
    let fp = params.fingerprint();
    let jitter = 1.0 + 0.18 * hash_noise(fp, 0xACC);
    let mut ate = err * jitter;
    if (fp % 41) == 0 {
        ate *= 2.5; // sporadic tracking-failure tail
    }
    ate.max(0.004)
}

/// Mean absolute trajectory error (meters) of ElasticFusion under `params`.
///
/// Shape calibrated to Table I: accuracy improves with more RGB influence
/// (low ICP weight), generous depth cutoff, moderate confidence threshold;
/// disabling SO(3) pre-alignment or loop closures costs accuracy; fern
/// relocalisation recovers a little.
pub fn ef_ate(params: &EfParams) -> f64 {
    let mut err = 0.028;
    // ICP/RGB balance: pure geometry mistracks textured planar regions.
    err += (params.icp_weight - 1.5).abs().powf(0.9) * 0.0016;
    // Depth cutoff: discarding far geometry starves the model.
    if params.depth_cutoff < 10.0 {
        err += (10.0 - params.depth_cutoff) * 0.0012;
    } else if params.depth_cutoff > 14.0 {
        err += (params.depth_cutoff - 14.0) * 0.003; // far-range noise
    }
    // Confidence: too strict → sparse model; too lax → noise in the model.
    err += (params.confidence - 4.0).abs() * 0.0011;
    if params.so3_disabled {
        err += 0.004;
    }
    if params.open_loop {
        err += 0.013;
    }
    if params.relocalisation {
        err -= 0.002;
    }
    if params.fast_odom {
        err += 0.0006; // slightly less converged odometry
    }
    if params.frame_to_frame_rgb {
        err += 0.005; // frame-to-frame drift vs. model-to-frame
    }

    let jitter = 1.0 + 0.1 * hash_noise(params.fingerprint(), 0xEFACC);
    (err * jitter).max(0.01)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_kfusion_near_paper_anchor() {
        let ate = kf_ate(&KfParams::default_config());
        assert!((0.035..=0.055).contains(&ate), "default KF ATE {ate}");
    }

    #[test]
    fn coarse_volume_hurts_accuracy() {
        let mut p = KfParams::default_config();
        let fine = kf_ate(&p);
        p.volume_resolution = 64.0;
        p.mu = 0.1;
        let coarse = kf_ate(&p);
        assert!(coarse > fine);
    }

    #[test]
    fn csr_and_rates_hurt_accuracy() {
        let p0 = KfParams::default_config();
        let base = kf_ate(&p0);
        let mut p = p0;
        p.compute_size_ratio = 8.0;
        assert!(kf_ate(&p) > base);
        let mut p = p0;
        p.tracking_rate = 5.0;
        assert!(kf_ate(&p) > base);
    }

    #[test]
    fn tiny_mu_with_coarse_volume_is_degenerate() {
        let mut p = KfParams::default_config();
        p.volume_resolution = 64.0;
        p.mu = 0.0125;
        let bad = kf_ate(&p);
        p.mu = 0.25;
        let ok = kf_ate(&p);
        assert!(bad > ok * 1.5, "bad {bad} ok {ok}");
    }

    #[test]
    fn loose_icp_threshold_hurts() {
        let mut p = KfParams::default_config();
        p.icp_threshold = 1e-7;
        let tight = kf_ate(&p);
        p.icp_threshold = 1e2;
        let loose = kf_ate(&p);
        assert!(loose > tight * 1.1, "loose {loose} vs tight {tight}");
    }

    #[test]
    fn ef_default_near_table_1() {
        let ate = ef_ate(&EfParams::default_config());
        assert!((0.048..=0.065).contains(&ate), "default EF ATE {ate}");
    }

    #[test]
    fn ef_best_accuracy_row_near_table_1() {
        // Table I best-accuracy row: ICP 1, Depth 10, Conf 4, SO3 0,
        // Close-Loops 0, Reloc 1, Fast-Odom 1, FTF 0 → 0.0269 m.
        let p = EfParams {
            icp_weight: 1.0,
            depth_cutoff: 10.0,
            confidence: 4.0,
            so3_disabled: false,
            open_loop: false,
            relocalisation: true,
            fast_odom: true,
            frame_to_frame_rgb: false,
        };
        let ate = ef_ate(&p);
        assert!((0.02..=0.035).contains(&ate), "best-accuracy EF ATE {ate}");
        assert!(ate < ef_ate(&EfParams::default_config()) * 0.65);
    }

    #[test]
    fn ef_open_loop_hurts() {
        let mut p = EfParams::default_config();
        let closed = ef_ate(&p);
        p.open_loop = true;
        assert!(ef_ate(&p) > closed);
    }

    #[test]
    fn models_deterministic() {
        let kp = KfParams::default_config();
        assert_eq!(kf_ate(&kp), kf_ate(&kp));
        let ep = EfParams::default_config();
        assert_eq!(ef_ate(&ep), ef_ate(&ep));
    }

    #[test]
    fn ate_always_positive() {
        // Sweep a crude grid and check positivity/finiteness.
        for vr in [64.0, 128.0, 256.0] {
            for mu in [0.0125, 0.1, 0.4] {
                for csr in [1.0, 8.0] {
                    let p = KfParams {
                        volume_resolution: vr,
                        mu,
                        compute_size_ratio: csr,
                        ..KfParams::default_config()
                    };
                    let a = kf_ate(&p);
                    assert!(a.is_finite() && a > 0.0);
                }
            }
        }
    }
}
