//! Named device models.

use serde::Serialize;

/// Throughput coefficients of one device (operations per second per kernel
/// class, plus a fixed per-frame overhead in seconds).
///
/// The absolute values are abstract "model ops"; only their ratios and the
/// resulting frame times are meaningful. The three named presets are
/// calibrated so the paper's anchor numbers hold: default KFusion ≈ 6 FPS
/// on the ODROID-XU3 and default ElasticFusion ≈ 55 ms/frame (22.2 s per
/// 400-frame sequence) on the GTX 780 Ti.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct DeviceModel {
    /// Human-readable name.
    pub name: String,
    /// Image filtering (bilateral/pyramid) throughput.
    pub filter_rate: f64,
    /// ICP/odometry row throughput.
    pub icp_rate: f64,
    /// Volume/fusion throughput (memory-bandwidth bound).
    pub integrate_rate: f64,
    /// Raycast/prediction throughput.
    pub raycast_rate: f64,
    /// Fixed per-frame overhead in seconds (dispatch, transfers).
    pub frame_overhead: f64,
    /// Seed for the device's deterministic perturbations.
    pub seed: u64,
}

/// The Hardkernel ODROID-XU3 (Exynos 5422, Mali-T628-MP6 4-core OpenCL
/// device) — the paper's embedded KFusion platform.
pub fn odroid_xu3() -> DeviceModel {
    DeviceModel {
        name: "ODROID-XU3 (Exynos 5422 / Mali-T628)".into(),
        filter_rate: 1.1e9,
        icp_rate: 6.5e8,
        integrate_rate: 4.5e8,
        raycast_rate: 7.5e8,
        frame_overhead: 0.008,
        seed: 0x0D801D,
    }
}

/// The ASUS Transformer T200TA (Intel Atom Z3795 + HD Graphics, Beignet
/// OpenCL) — the paper's second embedded platform. Slightly different
/// kernel balance: stronger CPU-side filtering, weaker GPU raycast.
pub fn asus_t200ta() -> DeviceModel {
    DeviceModel {
        name: "ASUS T200TA (Atom Z3795 / HD Graphics)".into(),
        filter_rate: 1.5e9,
        icp_rate: 7.5e8,
        integrate_rate: 5.5e8,
        raycast_rate: 6.0e8,
        frame_overhead: 0.012,
        seed: 0xA5_05,
    }
}

/// The desktop machine (Ivy Bridge E5-1620 v2 + NVIDIA GTX 780 Ti, CUDA) —
/// the paper's ElasticFusion platform.
pub fn gtx780ti() -> DeviceModel {
    DeviceModel {
        name: "Desktop (E5-1620 v2 / GTX 780 Ti)".into(),
        filter_rate: 2.0e10,
        icp_rate: 9.0e9,
        integrate_rate: 6.5e9,
        raycast_rate: 1.0e10,
        frame_overhead: 0.0015,
        seed: 0x78071,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_have_distinct_names_and_seeds() {
        let devs = [odroid_xu3(), asus_t200ta(), gtx780ti()];
        for i in 0..devs.len() {
            for j in (i + 1)..devs.len() {
                assert_ne!(devs[i].name, devs[j].name);
                assert_ne!(devs[i].seed, devs[j].seed);
            }
        }
    }

    #[test]
    fn desktop_is_much_faster_than_embedded() {
        let odroid = odroid_xu3();
        let desktop = gtx780ti();
        assert!(desktop.icp_rate > odroid.icp_rate * 5.0);
        assert!(desktop.integrate_rate > odroid.integrate_rate * 5.0);
    }

    #[test]
    fn rates_are_positive() {
        for d in [odroid_xu3(), asus_t200ta(), gtx780ti()] {
            assert!(d.filter_rate > 0.0);
            assert!(d.icp_rate > 0.0);
            assert!(d.integrate_rate > 0.0);
            assert!(d.raycast_rate > 0.0);
            assert!(d.frame_overhead >= 0.0);
        }
    }
}
