//! Per-kernel analytic runtime models.

use crate::hash_noise;
use crate::platform::DeviceModel;

/// The seven KFusion algorithmic parameters, in plain numeric form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KfParams {
    /// Voxels per axis (64–256).
    pub volume_resolution: f64,
    /// TSDF truncation distance in meters.
    pub mu: f64,
    /// Integer input downsampling ratio (1, 2, 4, 8).
    pub compute_size_ratio: f64,
    /// Track every n-th frame.
    pub tracking_rate: f64,
    /// ICP early-termination threshold.
    pub icp_threshold: f64,
    /// Integrate every n-th frame.
    pub integration_rate: f64,
    /// Per-level ICP iteration caps, finest first.
    pub pyramid: [f64; 3],
}

impl KfParams {
    /// The SLAMBench default configuration.
    pub fn default_config() -> Self {
        KfParams {
            volume_resolution: 256.0,
            mu: 0.1,
            compute_size_ratio: 1.0,
            tracking_rate: 1.0,
            icp_threshold: 1e-5,
            integration_rate: 2.0,
            pyramid: [10.0, 5.0, 4.0],
        }
    }

    /// Stable fingerprint of the configuration for hash perturbations.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for v in [
            self.volume_resolution,
            self.mu,
            self.compute_size_ratio,
            self.tracking_rate,
            self.icp_threshold,
            self.integration_rate,
            self.pyramid[0],
            self.pyramid[1],
            self.pyramid[2],
        ] {
            h = (h ^ v.to_bits()).wrapping_mul(0x100000001b3);
        }
        h
    }
}

/// The ElasticFusion parameters in plain numeric form.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EfParams {
    /// Relative ICP/RGB tracking weight.
    pub icp_weight: f64,
    /// Depth cutoff in meters.
    pub depth_cutoff: f64,
    /// Surfel confidence threshold.
    pub confidence: f64,
    /// Disable SO(3) pre-alignment.
    pub so3_disabled: bool,
    /// Disable local loop closures.
    pub open_loop: bool,
    /// Enable fern relocalisation.
    pub relocalisation: bool,
    /// Single-pyramid-level odometry.
    pub fast_odom: bool,
    /// Frame-to-frame RGB tracking.
    pub frame_to_frame_rgb: bool,
}

impl EfParams {
    /// The developers' default configuration (Table I, "Default" row).
    pub fn default_config() -> Self {
        EfParams {
            icp_weight: 10.0,
            depth_cutoff: 3.0,
            confidence: 10.0,
            so3_disabled: true,
            open_loop: false,
            relocalisation: true,
            fast_odom: false,
            frame_to_frame_rgb: false,
        }
    }

    /// Stable fingerprint for hash perturbations.
    pub fn fingerprint(&self) -> u64 {
        let mut h = 0xcbf29ce484222325u64;
        for v in [self.icp_weight, self.depth_cutoff, self.confidence] {
            h = (h ^ v.to_bits()).wrapping_mul(0x100000001b3);
        }
        let flags = (self.so3_disabled as u64)
            | (self.open_loop as u64) << 1
            | (self.relocalisation as u64) << 2
            | (self.fast_odom as u64) << 3
            | (self.frame_to_frame_rgb as u64) << 4;
        (h ^ flags).wrapping_mul(0x100000001b3)
    }
}

/// Sensor image size assumed by the models (SLAMBench uses QVGA input
/// on the embedded targets).
const SENSOR_PIXELS: f64 = 320.0 * 240.0;

/// Fraction of the maximum ICP iterations actually executed at a given
/// early-termination threshold: tight thresholds (≤ 1e-6) run every
/// iteration, loose thresholds (≥ 1e0) stop almost immediately.
fn icp_iteration_fraction(threshold: f64) -> f64 {
    let log = threshold.max(1e-12).log10();
    // 1.0 below 1e-6, linearly down to 0.08 at 1e0 and above.
    (1.0 - (log + 6.0) / 7.5).clamp(0.08, 1.0)
}

/// Per-frame KFusion runtime (seconds) for `params` on `device`.
///
/// Work terms follow the kernels' true complexity:
/// * preprocessing ∝ pixels (bilateral filter + pyramid build),
/// * tracking ∝ Σ_level pixels/4^level × iterations (ICP rows),
///   attempted every `tracking_rate` frames,
/// * integration ∝ volume_resolution³, every `integration_rate` frames,
/// * raycast ∝ pixels × marching steps, with steps ∝ 1/µ (bounded by the
///   voxel count along a ray).
pub fn kf_frame_time(params: &KfParams, device: &DeviceModel) -> f64 {
    let csr = params.compute_size_ratio.max(1.0);
    let pixels = SENSOR_PIXELS / (csr * csr);

    // Acquisition + mm→meters conversion always touches the full sensor
    // image, regardless of the compute-size ratio.
    let acquisition_ops = SENSOR_PIXELS * 40.0;

    // Preprocessing: bilateral filter (5×5 window) + pyramid construction.
    let preprocess_ops = pixels * (25.0 + 6.0);

    // Tracking: per-level ICP iterations, modulated by the threshold.
    let frac = icp_iteration_fraction(params.icp_threshold);
    let mut icp_ops = 0.0;
    for (level, &iters) in params.pyramid.iter().enumerate() {
        let level_pixels = pixels / 4f64.powi(level as i32);
        icp_ops += level_pixels * (iters * frac).max(0.5) * 60.0;
    }
    let tracking_ops = icp_ops / params.tracking_rate.max(1.0);

    // Integration: one pass over the full voxel grid.
    let vr = params.volume_resolution;
    let integrate_ops = vr * vr * vr * 4.0 / params.integration_rate.max(1.0);

    // Raycast: steps per ray bounded by both the µ-band marcher and the
    // voxel count along the ray.
    let steps = (4.0 / (0.75 * params.mu.max(1e-3))).min(vr * 1.5).max(4.0);
    let raycast_ops = pixels * steps * 2.5;

    let base = (acquisition_ops + preprocess_ops) / device.filter_rate
        + tracking_ops / device.icp_rate
        + integrate_ops / device.integrate_rate
        + raycast_ops / device.raycast_rate;

    // Fixed per-frame overhead (dispatch, transfers).
    let overhead = device.frame_overhead;

    // Multi-modal structure: cache/occupancy interference between µ, the
    // ICP threshold and the volume (cf. the ripples of Fig. 1), plus a
    // configuration-hashed perturbation.
    let ripple = 1.0
        + 0.06 * (params.mu.max(1e-3).ln() * 3.1).sin() * (params.icp_threshold.max(1e-12).ln() * 0.7).cos()
        + 0.04 * ((vr / 64.0).ln() * 2.3).sin();
    let jitter = 1.0 + 0.08 * hash_noise(params.fingerprint(), device.seed);

    ((base + overhead) * ripple * jitter).max(1e-4)
}

/// Per-frame ElasticFusion runtime (seconds) for `params` on `device`.
pub fn ef_frame_time(params: &EfParams, device: &DeviceModel) -> f64 {
    // ElasticFusion runs on full VGA input on the desktop platform.
    let pixels = 640.0 * 480.0;

    // Odometry: joint ICP+RGB over the pyramid. The fast-odometry mode
    // runs a single level with reduced iteration counts.
    let levels: f64 = if params.fast_odom { 0.72 } else { 1.0 + 0.25 + 0.0625 };
    let mut odometry_ops = pixels * levels * 700.0;
    if !params.so3_disabled && !params.fast_odom {
        odometry_ops += pixels * 0.0625 * 5.0 * 120.0; // SO(3) pre-alignment
    }
    if params.frame_to_frame_rgb {
        odometry_ops *= 0.92; // no model-intensity render needed
    }

    // Fusion & map maintenance: scales with the fraction of pixels kept by
    // the depth cutoff (saturating — most indoor depth is short-range) and
    // with map density (lower confidence keeps more surfels alive).
    let depth_factor = ((1.0 - (-params.depth_cutoff / 2.5).exp()) / 0.70).powf(0.5);
    let conf_factor = (10.0 / params.confidence.max(0.5)).powf(0.25);
    let fusion_ops = pixels * 320.0 * depth_factor * conf_factor;

    // Loop closure machinery: inactive-model prediction + registration.
    let loop_ops = if params.open_loop { 0.0 } else { pixels * 230.0 * depth_factor };
    let reloc_ops = if params.relocalisation { pixels * 4.0 } else { 0.0 };

    let base = odometry_ops / device.icp_rate
        + fusion_ops / device.integrate_rate
        + (loop_ops + reloc_ops) / device.raycast_rate;

    let ripple = 1.0
        + 0.05 * (params.icp_weight.max(0.1).ln() * 2.1).sin()
        + 0.03 * (params.depth_cutoff.ln() * 3.7).cos();
    let jitter = 1.0 + 0.06 * hash_noise(params.fingerprint(), device.seed ^ 0xEF);

    ((base + device.frame_overhead) * ripple * jitter).max(1e-4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{gtx780ti, odroid_xu3};

    #[test]
    fn default_kfusion_is_about_6_fps_on_odroid() {
        let t = kf_frame_time(&KfParams::default_config(), &odroid_xu3());
        let fps = 1.0 / t;
        assert!((4.0..=8.0).contains(&fps), "default ODROID FPS {fps}");
    }

    #[test]
    fn smaller_volume_is_faster() {
        let dev = odroid_xu3();
        let mut p = KfParams::default_config();
        let t_big = kf_frame_time(&p, &dev);
        p.volume_resolution = 64.0;
        let t_small = kf_frame_time(&p, &dev);
        assert!(t_small < t_big);
    }

    #[test]
    fn larger_csr_is_faster() {
        let dev = odroid_xu3();
        let mut p = KfParams::default_config();
        let t1 = kf_frame_time(&p, &dev);
        p.compute_size_ratio = 8.0;
        let t8 = kf_frame_time(&p, &dev);
        assert!(t8 < t1 * 0.7, "csr8 {t8} vs csr1 {t1}");
    }

    #[test]
    fn loose_icp_threshold_is_faster() {
        let dev = odroid_xu3();
        let mut p = KfParams::default_config();
        p.icp_threshold = 1e-7;
        let tight = kf_frame_time(&p, &dev);
        p.icp_threshold = 1e1;
        let loose = kf_frame_time(&p, &dev);
        assert!(loose < tight);
    }

    #[test]
    fn small_mu_slows_raycast() {
        let dev = odroid_xu3();
        let mut p = KfParams::default_config();
        p.mu = 0.0125;
        let small = kf_frame_time(&p, &dev);
        p.mu = 0.4;
        let big = kf_frame_time(&p, &dev);
        assert!(small > big);
    }

    #[test]
    fn rates_amortize_work() {
        let dev = odroid_xu3();
        let mut p = KfParams::default_config();
        let t1 = kf_frame_time(&p, &dev);
        p.tracking_rate = 5.0;
        p.integration_rate = 10.0;
        let t2 = kf_frame_time(&p, &dev);
        assert!(t2 < t1);
    }

    #[test]
    fn tuned_config_reaches_real_time_on_odroid() {
        // The paper's headline: a configuration near 30 FPS exists.
        let p = KfParams {
            volume_resolution: 64.0,
            mu: 0.2,
            compute_size_ratio: 4.0,
            tracking_rate: 2.0,
            icp_threshold: 1e-4,
            integration_rate: 5.0,
            pyramid: [4.0, 3.0, 2.0],
        };
        let fps = 1.0 / kf_frame_time(&p, &odroid_xu3());
        assert!(fps > 25.0, "tuned FPS {fps}");
    }

    #[test]
    fn kfusion_deterministic() {
        let p = KfParams::default_config();
        let dev = odroid_xu3();
        assert_eq!(kf_frame_time(&p, &dev), kf_frame_time(&p, &dev));
    }

    #[test]
    fn ef_default_sequence_time_near_paper() {
        // Table I: default = 22.2 s for the 400-frame sequence.
        let t = ef_frame_time(&EfParams::default_config(), &gtx780ti()) * 400.0;
        assert!((17.0..=28.0).contains(&t), "default EF sequence time {t}");
    }

    #[test]
    fn ef_fast_odom_is_faster() {
        let dev = gtx780ti();
        let mut p = EfParams::default_config();
        let slow = ef_frame_time(&p, &dev);
        p.fast_odom = true;
        let fast = ef_frame_time(&p, &dev);
        assert!(fast < slow);
    }

    #[test]
    fn ef_open_loop_is_faster() {
        let dev = gtx780ti();
        let mut p = EfParams::default_config();
        let closed = ef_frame_time(&p, &dev);
        p.open_loop = true;
        let open = ef_frame_time(&p, &dev);
        assert!(open < closed);
    }

    #[test]
    fn ef_depth_cutoff_scales_fusion() {
        let dev = gtx780ti();
        let mut p = EfParams::default_config();
        p.depth_cutoff = 1.0;
        let near = ef_frame_time(&p, &dev);
        p.depth_cutoff = 12.0;
        let far = ef_frame_time(&p, &dev);
        assert!(far > near);
    }

    #[test]
    fn fingerprints_distinguish_configs() {
        let a = KfParams::default_config();
        let mut b = a;
        b.mu = 0.2;
        assert_ne!(a.fingerprint(), b.fingerprint());
        let e1 = EfParams::default_config();
        let mut e2 = e1;
        e2.fast_odom = true;
        assert_ne!(e1.fingerprint(), e2.fingerprint());
    }
}
